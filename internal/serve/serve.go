// Package serve is the concurrent serving engine on top of core.System: a
// per-GPU worker pulls lookup requests off a queue and coalesces them into
// iteration-sized extraction batches (max-batch / max-wait, the way DLR
// inference servers batch sparse lookups), so many small client requests
// ride one locate/extract pass — the batched-extraction regime the paper's
// model assumes (§3.2, §6.2).
//
// The engine works in both modes of the underlying system: in functional
// mode each request gets its embedding rows back; in timing-only mode it
// gets just the simulated extraction cost of the coalesced batch it rode
// in. Requests never block each other across GPUs, and the system under-
// neath may Refresh concurrently — every coalesced batch resolves against
// one placement snapshot.
//
// Every server carries a telemetry registry (request-latency and queue-wait
// histograms, batch fill-reason counters, coalescing totals) and a
// per-batch trace ring; both update through lock-free per-worker shards and
// preallocated records, so instrumentation keeps the flush path at its
// BENCH_hotpath.json allocation budget (DESIGN.md §6.2).
package serve

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"ugache/internal/cache"
	"ugache/internal/core"
	"ugache/internal/extract"
	"ugache/internal/flight"
	"ugache/internal/hashtable"
	"ugache/internal/sim"
	"ugache/internal/telemetry"
	"ugache/internal/timeline"
)

// ErrClosed is returned by requests that reach a closed (or closing)
// server.
var ErrClosed = errors.New("serve: server closed")

// ErrOverload is returned by requests the admission controller sheds: the
// destination GPU's queue was full and either the server runs fast-fail
// admission (Config.AdmitWait == 0) or the bounded wait expired without
// space freeing up. Overload is a first-class serving state, not a fault —
// callers are expected to retry with backoff, degrade, or drop, and the
// shed is counted in serve_rejected_total.
var ErrOverload = errors.New("serve: overloaded, request shed")

// Config tunes the coalescer.
type Config struct {
	// MaxBatchKeys flushes a batch once this many (non-deduplicated) keys
	// are pending on a GPU (default 8192, one paper-sized iteration).
	MaxBatchKeys int
	// MaxWait flushes a non-empty batch after this long even if it is not
	// full (default 2ms) — the latency/throughput knob.
	MaxWait time.Duration
	// QueueDepth bounds the per-GPU inference admission ring (default 256,
	// rounded up to a power of two). A full ring sheds instead of blocking:
	// see AdmitWait.
	QueueDepth int
	// BackgroundQueueDepth bounds the per-GPU background (ClassBackground)
	// ring (default QueueDepth/4, min 4). Background work rides a smaller
	// ring so it sheds before inference traffic as pressure builds.
	BackgroundQueueDepth int
	// AdmitWait bounds how long an admission may wait for queue space before
	// shedding with ErrOverload. 0 (the default) is fast-fail admission: a
	// full ring sheds immediately. A positive value lets Handle park — off
	// the worker's critical path and outside any lock — until space frees or
	// the deadline expires, trading a little latency for fewer sheds near
	// the saturation knee.
	AdmitWait time.Duration

	// Lookahead enables the prefetch pipeline: L is how many batches ahead
	// clients announce upcoming keys via Prefetch, and sizes the per-GPU
	// prefetch queue. 0 (the default) disables prefetching entirely — no
	// staging arena, no workers, and a flush path identical to a
	// non-prefetching server.
	Lookahead int
	// StaleBatches is the bounded-staleness window S: after a Refresh swaps
	// the placement, staged rows committed under the outgoing version may
	// still be served for up to S batches instead of being discarded. 0
	// means staged rows die with their snapshot.
	StaleBatches int
	// StagingEntries sizes each GPU's staging arena in rows (default
	// Lookahead x MaxBatchKeys).
	StagingEntries int

	// Telemetry receives the engine's metrics. Nil creates a private
	// registry (sharded per GPU), so Metrics and Stats always work; pass
	// the same registry to core.Config.Telemetry to get the extraction and
	// refresh metrics alongside.
	Telemetry *telemetry.Registry
	// TraceDepth sizes the per-batch trace ring (default 256; negative
	// disables tracing entirely).
	TraceDepth int
	// TraceEvery records every Nth batch per worker into the trace ring
	// (default 1: every batch — recording is allocation-free, so the
	// default sampling keeps the hot path at its benchmarked budget).
	TraceEvery int
	// Sampler, when non-nil, observes every coalesced batch's unique keys
	// for §7.2 hotness re-estimation. Worker g feeds the sampler's shard g,
	// so one sampler may serve all workers concurrently.
	Sampler *cache.HotnessSampler
	// Controller, when non-nil, is notified after every flushed batch (after
	// the sampler observation) so a periodic- or drift-mode refresh
	// controller can close the §7.2 loop against the live stream. Use an
	// Async controller here — a synchronous one would run solves inline on
	// the flush path.
	Controller *core.Controller
	// Timeline, when non-nil, records every flushed batch as a span tree on
	// the serve track (queue-wait → coalesce → extract → gather → reply)
	// and, for TraceEvery-sampled batches, the extraction's fluid-sim phases
	// as per-link utilization spans (DESIGN.md §6.3). Worker g emits into
	// the recorder's shard g. Nil disables tracing behind one pointer check.
	Timeline *timeline.Recorder
	// Flight, when non-nil, receives the always-on flight-recorder events
	// (DESIGN.md §6.8): every flushed batch (latency / tier split / prefetch
	// hits), queue-depth samples and shed deltas at batch formation, and
	// staged prefetch windows. Worker g records into the recorder's ring g;
	// recording is a fixed set of atomic stores, so the flush path stays at
	// its BENCH_hotpath.json allocation budget with flight enabled.
	Flight *flight.Recorder
}

func (c Config) normalize() Config {
	if c.MaxBatchKeys <= 0 {
		c.MaxBatchKeys = 8192
	}
	if c.MaxWait <= 0 {
		c.MaxWait = 2 * time.Millisecond
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 256
	}
	if c.BackgroundQueueDepth <= 0 {
		c.BackgroundQueueDepth = c.QueueDepth / 4
		if c.BackgroundQueueDepth < 4 {
			c.BackgroundQueueDepth = 4
		}
	}
	if c.AdmitWait < 0 {
		c.AdmitWait = 0
	}
	if c.TraceDepth == 0 {
		c.TraceDepth = 256
	}
	if c.TraceEvery <= 0 {
		c.TraceEvery = 1
	}
	if c.Lookahead < 0 {
		c.Lookahead = 0
	}
	if c.StaleBatches < 0 {
		c.StaleBatches = 0
	}
	if c.Lookahead > 0 && c.StagingEntries <= 0 {
		c.StagingEntries = c.Lookahead * c.MaxBatchKeys
	}
	return c
}

// Result is what one request gets back.
type Result struct {
	// Rows holds len(keys) rows of EntryBytes in functional mode; nil in
	// timing-only mode.
	//
	// Ownership: Rows is a caller-owned copy. The server carves one
	// batch-sized allocation into per-request sub-slices at flush time and
	// never touches it again, so the caller may retain or mutate Rows
	// indefinitely. (Requests from the same coalesced batch share that
	// backing array; mutating past len(Rows) via append is the only way to
	// observe a neighbour, and slices handed out are full-capacity-clipped
	// to forbid exactly that.)
	Rows []byte
	// SimSeconds is the modelled extraction time of the coalesced batch
	// this request rode in (shared by every request in the batch).
	SimSeconds float64
	// BatchKeys is the unique-key size of that coalesced batch.
	BatchKeys int
	// Err is set when the lookup failed (bad key, closed server, ...).
	Err error
}

// Stats are cumulative serving counters, read from the telemetry registry.
type Stats struct {
	Requests      int64   // requests completed
	Batches       int64   // coalesced batches flushed
	RequestedKeys int64   // keys requested (before dedup)
	UniqueKeys    int64   // unique keys actually extracted
	SimSeconds    float64 // total simulated extraction time
}

// MeanBatchKeys is the mean unique-key size of a coalesced batch.
func (s Stats) MeanBatchKeys() float64 {
	if s.Batches == 0 {
		return 0
	}
	return float64(s.UniqueKeys) / float64(s.Batches)
}

type request struct {
	keys     []int64
	out      chan Result
	enqueued time.Time
	class    Class
}

// metrics is the serve-layer metric bundle; see DESIGN.md §6.2 for the
// naming scheme and overhead contract.
type metrics struct {
	requests      *telemetry.Counter
	batches       *telemetry.Counter
	requestedKeys *telemetry.Counter
	uniqueKeys    *telemetry.Counter
	simSeconds    *telemetry.FloatCounter
	fill          [3]*telemetry.Counter // indexed by telemetry.FillReason
	latency       *telemetry.Histogram
	queueWait     *telemetry.Histogram

	// Admission-control observability (DESIGN.md §6.7): requests shed by
	// the bounded rings, the background-class subset, requests that were
	// admitted only after a bounded wait, and the last/peak combined queue
	// depth a worker observed at batch formation.
	rejected           *telemetry.Counter
	rejectedBackground *telemetry.Counter
	admitWaitAdmitted  *telemetry.Counter
	queueDepth         *telemetry.Gauge
	queueDepthPeak     *telemetry.Gauge

	// Fill-source split: every unique key a flush resolves is either a
	// prefetch hit (served from the staging arena) or a demand miss (paid
	// for by the batch's own extraction), so fillPrefetchHit +
	// fillDemandMiss == uniqueKeys. With lookahead off every key is a
	// demand miss.
	fillPrefetchHit *telemetry.Counter
	fillDemandMiss  *telemetry.Counter

	// Prefetch-pipeline counters; all zero when Lookahead is 0.
	prefetchWindows    *telemetry.Counter
	prefetchStagedKeys *telemetry.Counter
	prefetchDropped    *telemetry.Counter
	prefetchErrors     *telemetry.Counter
	prefetchSimSeconds *telemetry.FloatCounter

	// Bounded-staleness observability: how many staged keys were served
	// past their placement version, and the last batch's maximum staleness.
	staleServedKeys *telemetry.Counter
	staleness       *telemetry.Gauge
}

func newMetrics(reg *telemetry.Registry) *metrics {
	// 1us..~4.3s in x2 steps covers sub-millisecond coalesced lookups
	// through multi-second stalls.
	latencyBuckets := telemetry.ExpBuckets(1e-6, 2, 23)
	return &metrics{
		requests:      reg.Counter("serve_requests_total", "requests completed"),
		batches:       reg.Counter("serve_batches_total", "coalesced batches flushed"),
		requestedKeys: reg.Counter("serve_requested_keys_total", "keys requested before dedup"),
		uniqueKeys:    reg.Counter("serve_unique_keys_total", "unique keys extracted"),
		simSeconds:    reg.FloatCounter("serve_sim_seconds_total", "simulated extraction seconds"),
		fill: [3]*telemetry.Counter{
			telemetry.FillFull:  reg.Counter("serve_batch_fill_full_total", "batches flushed because MaxBatchKeys was reached"),
			telemetry.FillTimer: reg.Counter("serve_batch_fill_timer_total", "batches flushed by the MaxWait deadline"),
			telemetry.FillDrain: reg.Counter("serve_batch_fill_drain_total", "batches flushed by the shutdown drain"),
		},
		latency:   reg.Histogram("serve_request_latency_seconds", "request latency from enqueue to reply", latencyBuckets),
		queueWait: reg.Histogram("serve_queue_wait_seconds", "queue wait of a batch's first request", latencyBuckets),

		rejected:           reg.Counter("serve_rejected_total", "requests shed by bounded admission (fast-fail or expired bounded wait)"),
		rejectedBackground: reg.Counter("serve_rejected_background_total", "background-class requests shed by bounded admission"),
		admitWaitAdmitted:  reg.Counter("serve_admit_wait_admitted_total", "requests admitted after a bounded wait on a full queue"),
		queueDepth:         reg.Gauge("serve_queue_depth_last", "combined queued requests observed at the last batch formation"),
		queueDepthPeak:     reg.Gauge("serve_queue_depth_peak", "peak combined queued requests observed at any batch formation"),

		fillPrefetchHit: reg.Counter("serve_fill_prefetch_hit", "unique keys served from the lookahead staging arena"),
		fillDemandMiss:  reg.Counter("serve_fill_demand_miss", "unique keys paid for by the batch's own demand extraction"),

		prefetchWindows:    reg.Counter("serve_prefetch_windows_total", "lookahead windows staged"),
		prefetchStagedKeys: reg.Counter("serve_prefetch_staged_keys_total", "keys committed into the staging arenas"),
		prefetchDropped:    reg.Counter("serve_prefetch_dropped_windows_total", "lookahead windows dropped on a full prefetch queue"),
		prefetchErrors:     reg.Counter("serve_prefetch_errors_total", "prefetch windows abandoned on extract/gather/commit errors"),
		prefetchSimSeconds: reg.FloatCounter("serve_prefetch_sim_seconds_total", "simulated extraction seconds spent off the critical path by prefetch"),

		staleServedKeys: reg.Counter("serve_stale_served_keys_total", "staged keys served past their placement version within the staleness window"),
		staleness:       reg.Gauge("serve_staleness_last_batches", "maximum staleness in batches among the last flush's staged hits"),
	}
}

// Server owns one worker goroutine per GPU.
type Server struct {
	sys        *core.System
	cfg        Config
	entryBytes int
	functional bool

	queues []*gpuQueue
	done   chan struct{}
	wg     sync.WaitGroup

	// Per-GPU overload accounting feeding the timeline overload track: sheds
	// since start, and the peak combined ring depth a worker observed.
	shed      []atomic.Int64
	peakDepth []atomic.Int64

	// closeMu fences admission against Close (the two-phase shutdown): an
	// admission pushes under the read lock after checking closed; Close sets
	// closed under the write lock before closing done. Pushes never block
	// (bounded rings fail fast), so the write lock is only ever a few
	// instructions away — Close cannot stall behind parked callers. Taking
	// the write lock excludes every in-flight push, so once done is closed
	// no further request can appear and the workers' final drain provably
	// empties the rings. Bounded waits park outside the lock and re-enter
	// it per attempt.
	closeMu sync.RWMutex
	closed  bool

	tel     *telemetry.Registry
	met     *metrics
	ring    *telemetry.TraceRing
	sampler *cache.HotnessSampler
	ctrl    *core.Controller
	tpb     [][]float64 // platform.TimePerByteTable, for alloc-free trace records
	netSrc  int         // cluster network SourceID as int, -1 off-cluster

	tl      *timeline.Recorder
	linkCap []float64 // topology link capacities, for utilization span args
	fl      *flight.Recorder

	// Lookahead prefetch pipeline (nil/empty when Config.Lookahead == 0).
	// batchSeq[g] counts GPU g's flushed batches; it is the logical clock
	// the staging arena's bounded-staleness contract is measured in.
	staging      []*cache.StagingArena
	prefetchQ    []chan *prefetchWindow
	prefetchGate []*pendingGate
	batchSeq     []atomic.Int64
	windowPool   sync.Pool
}

// New starts the serving engine for a built system.
func New(sys *core.System, cfg Config) (*Server, error) {
	if sys == nil {
		return nil, fmt.Errorf("serve: nil system")
	}
	cfg = cfg.normalize()
	reg := cfg.Telemetry
	if reg == nil {
		reg = telemetry.NewRegistry(sys.P.N)
	}
	s := &Server{
		sys:        sys,
		cfg:        cfg,
		entryBytes: sys.Cache.EntryBytes,
		functional: sys.Functional(),
		queues:     make([]*gpuQueue, sys.P.N),
		shed:       make([]atomic.Int64, sys.P.N),
		peakDepth:  make([]atomic.Int64, sys.P.N),
		done:       make(chan struct{}),
		tel:        reg,
		met:        newMetrics(reg),
		sampler:    cfg.Sampler,
		ctrl:       cfg.Controller,
		netSrc:     -1,
	}
	if sys.P.HasNetwork() {
		s.netSrc = int(sys.P.Network())
	}
	if cfg.TraceDepth > 0 {
		s.ring = telemetry.NewTraceRing(cfg.TraceDepth)
		s.tpb = sys.P.TimePerByteTable()
	}
	if cfg.Flight != nil {
		s.fl = cfg.Flight
		if s.tpb == nil {
			// Flight batch events carry the per-tier time split even when the
			// trace ring is disabled.
			s.tpb = sys.P.TimePerByteTable()
		}
	}
	if cfg.Timeline != nil {
		// Register the serve and fluid-sim track names once at wiring time;
		// the fmt output here is the interned-string source the hot path
		// reuses (Event names themselves are package literals).
		s.tl = cfg.Timeline
		s.tl.SetProcessName(timeline.ProcServe, "serve")
		for g := 0; g < sys.P.N; g++ {
			s.tl.SetThreadName(timeline.ProcServe, int32(g), fmt.Sprintf("gpu %d worker", g))
		}
		s.tl.SetProcessName(timeline.ProcSim, "fluid-sim links")
		s.linkCap = make([]float64, len(sys.P.Topo.Links))
		for l, link := range sys.P.Topo.Links {
			s.tl.SetThreadName(timeline.ProcSim, int32(l), link.Name)
			s.linkCap[l] = link.Capacity
		}
		s.tl.SetProcessName(timeline.ProcOverload, "overload")
		for g := 0; g < sys.P.N; g++ {
			s.tl.SetThreadName(timeline.ProcOverload, int32(g), fmt.Sprintf("gpu %d admission", g))
		}
	}
	if cfg.Lookahead > 0 {
		n := sys.P.N
		s.staging = make([]*cache.StagingArena, n)
		s.prefetchQ = make([]chan *prefetchWindow, n)
		s.prefetchGate = make([]*pendingGate, n)
		for g := 0; g < n; g++ {
			s.prefetchGate[g] = newPendingGate()
		}
		s.batchSeq = make([]atomic.Int64, n)
		s.windowPool.New = func() any { return &prefetchWindow{} }
		depth := 2 * cfg.Lookahead
		if depth < 8 {
			depth = 8
		}
		for g := 0; g < n; g++ {
			arena, err := cache.NewStaging(cfg.StagingEntries, s.entryBytes, s.functional)
			if err != nil {
				return nil, err
			}
			s.staging[g] = arena
			s.prefetchQ[g] = make(chan *prefetchWindow, depth)
		}
		if s.tl != nil {
			s.tl.SetProcessName(timeline.ProcPrefetch, "prefetch")
			for g := 0; g < n; g++ {
				s.tl.SetThreadName(timeline.ProcPrefetch, int32(g), fmt.Sprintf("gpu %d prefetch", g))
			}
		}
	}
	for g := range s.queues {
		s.queues[g] = newGPUQueue(s.cfg.QueueDepth, s.cfg.BackgroundQueueDepth)
		s.wg.Add(1)
		go s.worker(g)
	}
	if s.prefetchQ != nil {
		for g := range s.prefetchQ {
			s.wg.Add(1)
			go s.prefetchWorker(g)
		}
	}
	return s, nil
}

// Metrics returns the server's telemetry registry (the one passed in
// Config.Telemetry, or the private default).
func (s *Server) Metrics() *telemetry.Registry { return s.tel }

// Trace returns the per-batch trace ring, or nil when tracing is disabled.
func (s *Server) Trace() *telemetry.TraceRing { return s.ring }

// Handle enqueues one inference-class request for GPU gpu and returns the
// channel its Result will arrive on (buffered; the caller need not be
// ready). The keys slice is not retained past completion but must not be
// mutated until the result arrives. Admission is bounded: a full queue
// sheds with ErrOverload (after Config.AdmitWait, when set) instead of
// blocking the caller. Every request admitted before Close returns is
// guaranteed a Result; requests racing Close get ErrClosed.
func (s *Server) Handle(gpu int, keys []int64) <-chan Result {
	return s.HandleClass(gpu, keys, ClassInference)
}

// HandleClass is Handle with an explicit admission class. ClassBackground
// requests ride the smaller low-priority ring: they shed earlier under
// pressure and are only served when no inference request is pending.
func (s *Server) HandleClass(gpu int, keys []int64, class Class) <-chan Result {
	out := make(chan Result, 1)
	if gpu < 0 || gpu >= len(s.queues) {
		out <- Result{Err: fmt.Errorf("serve: bad gpu %d", gpu)}
		return out
	}
	if len(keys) == 0 {
		out <- Result{}
		return out
	}
	r := &request{keys: keys, out: out, enqueued: time.Now(), class: class}
	if err := s.admit(gpu, r); err != nil {
		out <- Result{Err: err}
	}
	return out
}

// admit pushes one request through the bounded admission path: a lock-free
// ring push under the close fence, then — when Config.AdmitWait allows — a
// deadline-bounded park on the space-freed signal with a retry per wakeup.
// Returns nil once the request is queued, ErrOverload on a shed, ErrClosed
// when the server shut down first.
func (s *Server) admit(gpu int, r *request) error {
	q := s.queues[gpu]
	s.closeMu.RLock()
	if s.closed {
		s.closeMu.RUnlock()
		return ErrClosed
	}
	ok := q.push(r)
	s.closeMu.RUnlock()
	if ok {
		q.wake()
		return nil
	}
	if s.cfg.AdmitWait <= 0 {
		return s.reject(gpu, r.class)
	}
	// Bounded wait: park outside the close fence so Close never stalls
	// behind waiters, re-attempt the push on every space signal, and shed
	// when the deadline fires. The timer allocation is fine — this is the
	// overload slow path by definition.
	timer := time.NewTimer(s.cfg.AdmitWait)
	defer timer.Stop()
	for {
		select {
		case <-q.space:
		case <-timer.C:
			return s.reject(gpu, r.class)
		case <-s.done:
			return ErrClosed
		}
		s.closeMu.RLock()
		if s.closed {
			s.closeMu.RUnlock()
			return ErrClosed
		}
		ok := q.push(r)
		s.closeMu.RUnlock()
		if ok {
			q.wake()
			s.met.admitWaitAdmitted.Add(gpu, 1)
			return nil
		}
	}
}

// reject records one shed and returns ErrOverload.
func (s *Server) reject(gpu int, class Class) error {
	s.met.rejected.Add(gpu, 1)
	if class == ClassBackground {
		s.met.rejectedBackground.Add(gpu, 1)
	}
	s.shed[gpu].Add(1)
	return ErrOverload
}

// Lookup is the synchronous form of Handle.
func (s *Server) Lookup(gpu int, keys []int64) (Result, error) {
	res := <-s.Handle(gpu, keys)
	return res, res.Err
}

// QueueDepths returns GPU gpu's current (approximate) queued-request counts
// for the inference and background rings — a diagnostics/backpressure probe,
// not a synchronization primitive.
func (s *Server) QueueDepths(gpu int) (inference, background int) {
	if gpu < 0 || gpu >= len(s.queues) {
		return 0, 0
	}
	return s.queues[gpu].high.depth(), s.queues[gpu].low.depth()
}

// QueueCapacity returns the per-GPU admission ring capacities (inference
// and background) after defaulting and power-of-two rounding — what load
// drivers should report peak depths against.
func (s *Server) QueueCapacity() (inference, background int) {
	return s.queues[0].high.capacity(), s.queues[0].low.capacity()
}

// Close stops accepting requests, flushes everything already queued, and
// waits for the workers to exit. Safe to call more than once; concurrent
// Handle calls either complete normally or observe ErrClosed/ErrOverload —
// none are stranded, and because admission never blocks inside the close
// fence (bounded waits park outside it and watch done), Close cannot stall
// behind a saturated queue.
func (s *Server) Close() {
	s.closeMu.Lock()
	if s.closed {
		s.closeMu.Unlock()
		return
	}
	s.closed = true
	s.closeMu.Unlock()
	// Phase 2: every in-flight Handle has either enqueued or been rejected;
	// with closed set no new one can enter. The workers drain what is left
	// and exit.
	close(s.done)
	s.wg.Wait()
}

// Stats returns a copy of the cumulative counters.
func (s *Server) Stats() Stats {
	return Stats{
		Requests:      s.met.requests.Value(),
		Batches:       s.met.batches.Value(),
		RequestedKeys: s.met.requestedKeys.Value(),
		UniqueKeys:    s.met.uniqueKeys.Value(),
		SimSeconds:    s.met.simSeconds.Value(),
	}
}

// workerScratch is one worker's reusable flush state: the open-addressing
// dedup table (replacing a throwaway map per flush), the unique-key list,
// the single-GPU extraction batch, the staging buffer for gathered unique
// rows, and the core-level extract/gather scratch. All of it lives for the
// worker's lifetime, so a steady-state flush allocates only the
// caller-owned Result.Rows block.
type workerScratch struct {
	dedup *hashtable.Dedup
	uniq  []int64
	batch extract.Batch
	rows  []byte
	core  *core.Scratch
	seq   int64 // batches flushed by this worker (trace sampling)
	span  *timeline.Shard

	// reqs is the reusable batch-formation slice (the worker and the drain
	// rebuild it in place every batch) and lastShed the shed count already
	// published to the overload track and the flight ring.
	reqs     []*request
	lastShed int64

	// flight is this worker's flight ring (nil when flight recording is
	// off); the worker is its only producer.
	flight *flight.Ring

	// Staging-consume buffers, used only when the prefetch pipeline is on:
	// the per-unique-key hit mask, the residual demand keys with their
	// positions in uniq, the staged-hit key list for the extraction's
	// staged-source plan, and the demand gather target (scattered back into
	// rows afterwards). All grow once and live with the worker, keeping the
	// enabled flush path allocation-free too.
	hit        []bool
	demand     []int64
	demandIdx  []int32
	staged     []int64
	demandRows []byte
}

func (s *Server) newWorkerScratch(g int) *workerScratch {
	sc := &workerScratch{
		dedup: hashtable.NewDedup(s.cfg.MaxBatchKeys),
		batch: extract.Batch{Keys: make([][]int64, s.sys.P.N)},
		core:  core.NewScratch(),
	}
	if s.staging != nil {
		sc.batch.Staged = make([][]int64, s.sys.P.N)
	}
	if s.tl != nil {
		sc.span = s.tl.Shard(g)
		sc.core.RecordSimPhases(true)
	}
	if s.fl != nil {
		sc.flight = s.fl.Ring(g)
	}
	return sc
}

// worker is GPU g's coalescing loop: wait for one request, then keep
// accumulating until the batch is full or MaxWait elapsed, then flush. The
// rings are polled directly; when both are empty the worker parks on the
// queue's wakeup token (producers post it after every successful push, and
// the worker re-checks the rings after every token, so a wakeup is never
// lost — see gpuQueue).
func (s *Server) worker(g int) {
	defer s.wg.Done()
	q := s.queues[g]
	sc := s.newWorkerScratch(g)
	timer := time.NewTimer(s.cfg.MaxWait)
	defer timer.Stop()
	for {
		first := q.pop()
		if first == nil {
			select {
			case <-q.notify:
				continue
			case <-s.done:
				s.drain(g, q, sc)
				return
			}
		}
		queueWait := time.Since(first.enqueued)
		batch := append(sc.reqs[:0], first)
		pending := len(first.keys)
		reason := telemetry.FillFull
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		timer.Reset(s.cfg.MaxWait)
	fill:
		for pending < s.cfg.MaxBatchKeys {
			if r := q.pop(); r != nil {
				batch = append(batch, r)
				pending += len(r.keys)
				continue
			}
			select {
			case <-q.notify:
			case <-timer.C:
				reason = telemetry.FillTimer
				break fill
			case <-s.done:
				reason = telemetry.FillDrain
				break fill
			}
		}
		sc.reqs = batch
		s.observeQueue(g, q, sc)
		s.flush(g, batch, sc, reason, queueWait)
		// The batch formation freed ring space: wake one bounded-wait
		// admitter, if any are parked.
		q.freed()
	}
}

// observeQueue publishes the admission-side backpressure signals at batch
// formation: the queue-depth gauges, the peak tracker, and — when a span
// recorder or flight ring is wired — the overload counter series (queued
// depth and cumulative sheds per GPU), so saturation is visible in Perfetto
// and survives in the flight rings alongside the batch events.
func (s *Server) observeQueue(g int, q *gpuQueue, sc *workerScratch) {
	depth := q.depth()
	s.met.queueDepth.Set(float64(depth))
	if peak := s.peakDepth[g].Load(); int64(depth) > peak {
		s.peakDepth[g].Store(int64(depth))
		max := int64(depth)
		for i := range s.peakDepth {
			if v := s.peakDepth[i].Load(); v > max {
				max = v
			}
		}
		s.met.queueDepthPeak.Set(float64(max))
	}
	if sc.span == nil && sc.flight == nil {
		return
	}
	shed := s.shed[g].Load()
	newSheds := shed - sc.lastShed
	sc.lastShed = shed
	if sc.flight != nil {
		e := flight.Event{Kind: flight.KindQueue, GPU: int32(g), UnixNanos: time.Now().UnixNano()}
		e.V[flight.QueueDepth] = float64(depth)
		e.V[flight.QueueShedTotal] = float64(shed)
		sc.flight.Record(&e)
		if newSheds > 0 {
			e = flight.Event{Kind: flight.KindShed, GPU: int32(g), UnixNanos: e.UnixNanos}
			e.V[flight.ShedNew] = float64(newSheds)
			sc.flight.Record(&e)
		}
	}
	if sc.span == nil {
		return
	}
	now := s.tl.Now()
	ev := timeline.Event{Name: "queue_depth", Cat: "overload", Ph: timeline.PhCounter,
		PID: timeline.ProcOverload, TID: int32(g), Start: now}
	ev.AddArg("requests", float64(depth))
	sc.span.Emit(&ev)
	ev2 := timeline.Event{Name: "shed_total", Cat: "overload", Ph: timeline.PhCounter,
		PID: timeline.ProcOverload, TID: int32(g), Start: now}
	ev2.AddArg("requests", float64(shed))
	sc.span.Emit(&ev2)
	if newSheds > 0 {
		inst := timeline.Event{Name: "overload-shed", Cat: "overload", Ph: timeline.PhInstant,
			PID: timeline.ProcOverload, TID: int32(g), Start: now}
		inst.AddArg("new_sheds", float64(newSheds))
		sc.span.Emit(&inst)
	}
}

// drain flushes whatever is still queued at Close time so no admitted
// caller is left waiting. It runs after close(s.done), by which point
// Close's write lock has excluded every producer, so an empty poll really
// means the rings are empty for good. Leftovers are coalesced up to
// MaxBatchKeys per flush — a Close under backlog runs O(backlog/batch)
// extractions, not one per request.
func (s *Server) drain(g int, q *gpuQueue, sc *workerScratch) {
	for {
		first := q.pop()
		if first == nil {
			return
		}
		batch := append(sc.reqs[:0], first)
		pending := len(first.keys)
		for pending < s.cfg.MaxBatchKeys {
			r := q.pop()
			if r == nil {
				break
			}
			batch = append(batch, r)
			pending += len(r.keys)
		}
		sc.reqs = batch
		s.flush(g, batch, sc, telemetry.FillDrain, time.Since(first.enqueued))
	}
}

// flush coalesces the batch's keys, runs one extraction, and fans the
// per-request results back out. Everything it needs lives in the worker's
// scratch; the only steady-state allocation is the batch-sized Rows block
// handed to the callers (see Result.Rows). The telemetry updates are
// lock-free shard writes and one preallocated trace-ring copy.
func (s *Server) flush(g int, batch []*request, sc *workerScratch, reason telemetry.FillReason, queueWait time.Duration) {
	// Wall-clock checkpoints for the span tree; only taken when tracing is
	// on (sc.span is nil otherwise, and the clock reads cost nothing).
	var ft flushTimes
	if sc.span != nil {
		ft.enqueue = s.tl.Since(batch[0].enqueued)
		ft.dequeue = ft.enqueue + queueWait.Seconds()
	}
	// Dedupe across requests with the generation-stamped open-addressing
	// table, remembering each unique key's row index.
	requested := 0
	for _, r := range batch {
		requested += len(r.keys)
	}
	sc.dedup.Reset(requested)
	uniq := sc.uniq[:0]
	for _, r := range batch {
		for _, k := range r.keys {
			if _, fresh := sc.dedup.Add(k); fresh {
				uniq = append(uniq, k)
			}
		}
	}
	sc.uniq = uniq

	// Resolve staged prefetch hits before the extraction (pipeline on only):
	// hit rows are copied straight out of the staging arena under one read
	// lock, the residual demand keys ride the extraction as usual, and the
	// staged keys are charged as local reads via the staged-source plan so
	// the batch's modelled time reflects the overlap win.
	extractKeys := uniq
	prefetchHits, staleServed := 0, 0
	staleMax := int64(0)
	var rows []byte
	if s.functional {
		need := len(uniq) * s.entryBytes
		if cap(sc.rows) < need {
			sc.rows = make([]byte, need)
		}
		rows = sc.rows[:need]
	}
	if s.staging != nil {
		if cap(sc.hit) < len(uniq) {
			sc.hit = make([]bool, len(uniq))
		}
		hitMask := sc.hit[:len(uniq)]
		version := s.sys.PlacementVersion()
		now := s.batchSeq[g].Load()
		prefetchHits, staleServed, staleMax = s.staging[g].Consume(
			uniq, now, int64(s.cfg.StaleBatches), version, rows, hitMask)
		if prefetchHits > 0 {
			demand := sc.demand[:0]
			demandIdx := sc.demandIdx[:0]
			stagedKeys := sc.staged[:0]
			for i, k := range uniq {
				if hitMask[i] {
					stagedKeys = append(stagedKeys, k)
				} else {
					demand = append(demand, k)
					demandIdx = append(demandIdx, int32(i))
				}
			}
			sc.demand, sc.demandIdx, sc.staged = demand, demandIdx, stagedKeys
			sc.batch.Staged[g] = stagedKeys
			extractKeys = demand
		}
	}

	// One simulated extraction for the whole coalesced batch. The result
	// aliases sc.core, so pull out the scalars we need before reusing it.
	sc.batch.Keys[g] = extractKeys
	if sc.span != nil {
		ft.extractStart = s.tl.Now()
	}
	res, err := s.sys.ExtractBatchWith(&sc.batch, sc.core)
	sc.batch.Keys[g] = nil
	if sc.batch.Staged != nil {
		sc.batch.Staged[g] = nil
	}
	if err != nil {
		s.fail(batch, err)
		return
	}
	if sc.span != nil {
		ft.extractEnd = s.tl.Now()
		ft.gatherEnd = ft.extractEnd
	}
	simTime := res.Time
	phases := res.Phases
	sc.seq++
	sampled := sc.seq%int64(s.cfg.TraceEvery) == 0
	if s.ring != nil && sampled {
		s.recordTrace(g, sc.seq, batch, res, requested, len(uniq), reason, queueWait, simTime, prefetchHits, staleMax)
	}
	// The flight batch event's tier split is read here, before the
	// functional gather below reuses sc.core (res aliases the scratch).
	var flLocal, flRemote, flHost, flNetwork float64
	if sc.flight != nil {
		host, network := int(s.sys.P.Host()), s.netSrc
		for j, bytes := range res.SrcBytes[g] {
			if bytes == 0 {
				continue
			}
			sec := bytes * s.tpb[g][j]
			switch {
			case j == host:
				flHost += sec
			case j == network:
				flNetwork += sec
			case j == g:
				flLocal += sec
			default:
				flRemote += sec
			}
		}
	}

	// Feed the §7.2 hotness sampler with this batch's unique keys; shard g
	// belongs to this worker, so the observation is race-free.
	if s.sampler != nil {
		s.sampler.Shard(g).Observe(uniq)
	}
	if s.ctrl != nil {
		s.ctrl.BatchObserved()
	}

	// One functional gather into the worker's row buffer, if the system
	// holds bytes. With staged hits the gather covers only the residual
	// demand keys — their rows land in a side buffer and are scattered back
	// into the hit-interleaved positions; the staged rows were already
	// copied by Consume.
	if s.functional {
		if prefetchHits > 0 {
			if len(extractKeys) > 0 {
				need := len(extractKeys) * s.entryBytes
				if cap(sc.demandRows) < need {
					sc.demandRows = make([]byte, need)
				}
				dr := sc.demandRows[:need]
				if err := s.sys.LookupWith(g, extractKeys, dr, sc.core); err != nil {
					s.fail(batch, err)
					return
				}
				for j, i := range sc.demandIdx {
					copy(rows[int(i)*s.entryBytes:(int(i)+1)*s.entryBytes], dr[j*s.entryBytes:(j+1)*s.entryBytes])
				}
			}
		} else if err := s.sys.LookupWith(g, uniq, rows, sc.core); err != nil {
			s.fail(batch, err)
			return
		}
		if sc.span != nil {
			ft.gatherEnd = s.tl.Now()
		}
	}

	// Fan back out: one caller-owned allocation for the whole batch, carved
	// into full-capacity-clipped per-request sub-slices.
	var outBuf []byte
	if rows != nil {
		outBuf = make([]byte, requested*s.entryBytes)
	}
	off := 0
	maxLat := 0.0
	for _, r := range batch {
		out := Result{SimSeconds: simTime, BatchKeys: len(uniq)}
		if rows != nil {
			end := off + len(r.keys)*s.entryBytes
			out.Rows = outBuf[off:end:end]
			for i, k := range r.keys {
				j, _ := sc.dedup.Index(k)
				copy(out.Rows[i*s.entryBytes:], rows[j*s.entryBytes:(j+1)*s.entryBytes])
			}
			off = end
		}
		r.out <- out
		lat := time.Since(r.enqueued).Seconds()
		if lat > maxLat {
			maxLat = lat
		}
		s.met.latency.Observe(g, lat)
	}

	m := s.met
	m.requests.Add(g, int64(len(batch)))
	m.batches.Add(g, 1)
	m.requestedKeys.Add(g, int64(requested))
	m.uniqueKeys.Add(g, int64(len(uniq)))
	m.simSeconds.Add(g, simTime)
	m.fill[reason].Add(g, 1)
	m.queueWait.Observe(g, queueWait.Seconds())
	m.fillPrefetchHit.Add(g, int64(prefetchHits))
	m.fillDemandMiss.Add(g, int64(len(uniq)-prefetchHits))
	if s.staging != nil {
		if staleServed > 0 {
			m.staleServedKeys.Add(g, int64(staleServed))
		}
		m.staleness.Set(float64(staleMax))
		// Advance GPU g's batch clock: the staleness window of every staged
		// row is measured against this sequence.
		s.batchSeq[g].Add(1)
	}

	if sc.flight != nil {
		// The event's Seq is this worker's batch sequence — the same value
		// the timeline root span carries as its seq arg, which is what lets
		// a bundle's exemplar resolve into the matching span tree.
		e := flight.Event{Kind: flight.KindBatch, GPU: int32(g), Seq: sc.seq,
			UnixNanos: time.Now().UnixNano()}
		e.V[flight.BatchLatencySeconds] = maxLat
		e.V[flight.BatchRequests] = float64(len(batch))
		e.V[flight.BatchUniqueKeys] = float64(len(uniq))
		e.V[flight.BatchPrefetchHits] = float64(prefetchHits)
		e.V[flight.BatchSimSeconds] = simTime
		e.V[flight.BatchLocalSeconds] = flLocal
		e.V[flight.BatchRemoteSeconds] = flRemote
		e.V[flight.BatchHostSeconds] = flHost
		e.V[flight.BatchNetworkSeconds] = flNetwork
		sc.flight.Record(&e)
	}

	if sc.span != nil {
		ft.replyEnd = s.tl.Now()
		s.emitFlushSpans(g, sc, &ft, len(batch), requested, len(uniq), reason, simTime, phases, sampled, prefetchHits, staleMax)
	}
}

// flushTimes are one traced flush's wall-clock checkpoints, in seconds since
// the recorder epoch. gatherEnd equals extractEnd in timing-only mode.
type flushTimes struct {
	enqueue, dequeue, extractStart, extractEnd, gatherEnd, replyEnd float64
}

// emitFlushSpans renders one flushed batch as its span tree on the serve
// track and — for sampled batches whose extraction carried a fluid-sim phase
// log — the per-link flow spans on the sim track, anchored at the
// extraction's wall start so the simulated timeline nests visually under the
// extract span. All names are package literals; nothing here allocates
// beyond the shard's ring copy.
func (s *Server) emitFlushSpans(g int, sc *workerScratch, ft *flushTimes,
	requests, requested, unique int, reason telemetry.FillReason,
	simTime float64, phases *sim.PhaseLog, sampled bool,
	prefetchHits int, staleMax int64) {
	tid := int32(g)
	root := timeline.Event{Name: "batch", Cat: "serve", Ph: timeline.PhSpan,
		PID: timeline.ProcServe, TID: tid, Start: ft.enqueue, Dur: ft.replyEnd - ft.enqueue}
	// seq keys the span tree to this worker's batch sequence — the join
	// column flight-recorder exemplars resolve through.
	root.AddArg("seq", float64(sc.seq))
	root.AddArg("requests", float64(requests))
	root.AddArg("requested_keys", float64(requested))
	root.AddArg("unique_keys", float64(unique))
	root.AddArg("sim_seconds", simTime)
	root.AddArg("fill_reason", float64(reason))
	if s.staging != nil {
		root.AddArg("prefetch_hits", float64(prefetchHits))
		root.AddArg("staleness_batches", float64(staleMax))
	}
	sc.span.Emit(&root)
	child := func(name string, start, end float64) {
		if end < start {
			end = start
		}
		ev := timeline.Event{Name: name, Cat: "serve", Ph: timeline.PhSpan,
			PID: timeline.ProcServe, TID: tid, Start: start, Dur: end - start}
		sc.span.Emit(&ev)
	}
	child("queue-wait", ft.enqueue, ft.dequeue)
	child("coalesce", ft.dequeue, ft.extractStart)
	child("extract", ft.extractStart, ft.extractEnd)
	if ft.gatherEnd > ft.extractEnd {
		child("gather", ft.extractEnd, ft.gatherEnd)
	}
	child("reply", ft.gatherEnd, ft.replyEnd)

	if !sampled || phases == nil {
		return
	}
	prev := 0.0
	for p := 0; p < phases.Phases(); p++ {
		end := phases.T[p]
		for l := range s.linkCap {
			rate := phases.RateAt(p, sim.LinkID(l))
			if rate <= 0 {
				continue
			}
			ev := timeline.Event{Name: "link-flow", Cat: "sim", Ph: timeline.PhSpan,
				PID: timeline.ProcSim, TID: int32(l), Start: ft.extractStart + prev, Dur: end - prev}
			if c := s.linkCap[l]; c > 0 {
				ev.AddArg("util", rate/c)
			}
			ev.AddArg("rate_bytes_per_s", rate)
			sc.span.Emit(&ev)
		}
		prev = end
	}
}

// recordTrace snapshots one batch into the trace ring: formation stats plus
// the per-tier bytes and modelled seconds from the extractor's
// source-volume matrix (read before the scratch is reused).
func (s *Server) recordTrace(g int, seq int64, batch []*request, res *extract.Result,
	requested, unique int, reason telemetry.FillReason, queueWait time.Duration, simTime float64,
	prefetchHits int, staleMax int64) {
	tr := telemetry.BatchTrace{
		Seq:              seq,
		GPU:              g,
		UnixNanos:        time.Now().UnixNano(),
		QueueWaitSeconds: queueWait.Seconds(),
		Requests:         len(batch),
		RequestedKeys:    requested,
		UniqueKeys:       unique,
		Reason:           reason,
		SimSeconds:       simTime,
		PrefetchHits:     prefetchHits,
		StaleBatches:     staleMax,
	}
	host, network := int(s.sys.P.Host()), s.netSrc
	for j, bytes := range res.SrcBytes[g] {
		if bytes == 0 {
			continue
		}
		sec := bytes * s.tpb[g][j]
		switch {
		case j == host:
			tr.HostBytes += bytes
			tr.HostSeconds += sec
		case j == network:
			tr.NetworkBytes += bytes
			tr.NetworkSeconds += sec
		case j == g:
			tr.LocalBytes += bytes
			tr.LocalSeconds += sec
		default:
			tr.RemoteBytes += bytes
			tr.RemoteSeconds += sec
		}
	}
	s.ring.Record(&tr)
}

func (s *Server) fail(batch []*request, err error) {
	for _, r := range batch {
		r.out <- Result{Err: err}
	}
}
