// Package serve is the concurrent serving engine on top of core.System: a
// per-GPU worker pulls lookup requests off a queue and coalesces them into
// iteration-sized extraction batches (max-batch / max-wait, the way DLR
// inference servers batch sparse lookups), so many small client requests
// ride one locate/extract pass — the batched-extraction regime the paper's
// model assumes (§3.2, §6.2).
//
// The engine works in both modes of the underlying system: in functional
// mode each request gets its embedding rows back; in timing-only mode it
// gets just the simulated extraction cost of the coalesced batch it rode
// in. Requests never block each other across GPUs, and the system under-
// neath may Refresh concurrently — every coalesced batch resolves against
// one placement snapshot.
package serve

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"ugache/internal/core"
	"ugache/internal/extract"
)

// Config tunes the coalescer.
type Config struct {
	// MaxBatchKeys flushes a batch once this many (non-deduplicated) keys
	// are pending on a GPU (default 8192, one paper-sized iteration).
	MaxBatchKeys int
	// MaxWait flushes a non-empty batch after this long even if it is not
	// full (default 2ms) — the latency/throughput knob.
	MaxWait time.Duration
	// QueueDepth is the per-GPU request queue buffer (default 256).
	QueueDepth int
}

func (c Config) normalize() Config {
	if c.MaxBatchKeys <= 0 {
		c.MaxBatchKeys = 8192
	}
	if c.MaxWait <= 0 {
		c.MaxWait = 2 * time.Millisecond
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 256
	}
	return c
}

// Result is what one request gets back.
type Result struct {
	// Rows holds len(keys) rows of EntryBytes in functional mode; nil in
	// timing-only mode.
	Rows []byte
	// SimSeconds is the modelled extraction time of the coalesced batch
	// this request rode in (shared by every request in the batch).
	SimSeconds float64
	// BatchKeys is the unique-key size of that coalesced batch.
	BatchKeys int
	// Err is set when the lookup failed (bad key, closed server, ...).
	Err error
}

// Stats are cumulative serving counters.
type Stats struct {
	Requests      int64   // requests completed
	Batches       int64   // coalesced batches flushed
	RequestedKeys int64   // keys requested (before dedup)
	UniqueKeys    int64   // unique keys actually extracted
	SimSeconds    float64 // total simulated extraction time
}

// MeanBatchKeys is the mean unique-key size of a coalesced batch.
func (s Stats) MeanBatchKeys() float64 {
	if s.Batches == 0 {
		return 0
	}
	return float64(s.UniqueKeys) / float64(s.Batches)
}

type request struct {
	keys []int64
	out  chan Result
}

// Server owns one worker goroutine per GPU.
type Server struct {
	sys        *core.System
	cfg        Config
	entryBytes int
	functional bool

	queues []chan *request
	done   chan struct{}
	wg     sync.WaitGroup
	closed atomic.Bool

	mu    sync.Mutex
	stats Stats
}

// New starts the serving engine for a built system.
func New(sys *core.System, cfg Config) (*Server, error) {
	if sys == nil {
		return nil, fmt.Errorf("serve: nil system")
	}
	s := &Server{
		sys:        sys,
		cfg:        cfg.normalize(),
		entryBytes: sys.Cache.EntryBytes,
		functional: sys.Functional(),
		queues:     make([]chan *request, sys.P.N),
		done:       make(chan struct{}),
	}
	for g := range s.queues {
		s.queues[g] = make(chan *request, s.cfg.QueueDepth)
		s.wg.Add(1)
		go s.worker(g)
	}
	return s, nil
}

// Handle enqueues one request for GPU gpu and returns the channel its
// Result will arrive on (buffered; the caller need not be ready). The keys
// slice is not retained past completion but must not be mutated until the
// result arrives.
func (s *Server) Handle(gpu int, keys []int64) <-chan Result {
	out := make(chan Result, 1)
	if gpu < 0 || gpu >= len(s.queues) {
		out <- Result{Err: fmt.Errorf("serve: bad gpu %d", gpu)}
		return out
	}
	if len(keys) == 0 {
		out <- Result{}
		return out
	}
	if s.closed.Load() {
		out <- Result{Err: fmt.Errorf("serve: server closed")}
		return out
	}
	r := &request{keys: keys, out: out}
	select {
	case s.queues[gpu] <- r:
	case <-s.done:
		out <- Result{Err: fmt.Errorf("serve: server closed")}
	}
	return out
}

// Lookup is the synchronous form of Handle.
func (s *Server) Lookup(gpu int, keys []int64) (Result, error) {
	res := <-s.Handle(gpu, keys)
	return res, res.Err
}

// Close stops accepting requests, flushes everything already queued, and
// waits for the workers to exit. Safe to call more than once.
func (s *Server) Close() {
	if s.closed.Swap(true) {
		return
	}
	close(s.done)
	s.wg.Wait()
}

// Stats returns a copy of the cumulative counters.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// worker is GPU g's coalescing loop: wait for one request, then keep
// accumulating until the batch is full or MaxWait elapsed, then flush.
func (s *Server) worker(g int) {
	defer s.wg.Done()
	q := s.queues[g]
	timer := time.NewTimer(s.cfg.MaxWait)
	defer timer.Stop()
	for {
		var first *request
		select {
		case first = <-q:
		case <-s.done:
			s.drain(g, q)
			return
		}
		batch := []*request{first}
		pending := len(first.keys)
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		timer.Reset(s.cfg.MaxWait)
	fill:
		for pending < s.cfg.MaxBatchKeys {
			select {
			case r := <-q:
				batch = append(batch, r)
				pending += len(r.keys)
			case <-timer.C:
				break fill
			case <-s.done:
				break fill
			}
		}
		s.flush(g, batch)
	}
}

// drain flushes whatever is still queued at Close time so no Handle caller
// is left waiting.
func (s *Server) drain(g int, q chan *request) {
	for {
		select {
		case r := <-q:
			s.flush(g, []*request{r})
		default:
			return
		}
	}
}

// flush coalesces the batch's keys, runs one extraction, and fans the
// per-request results back out.
func (s *Server) flush(g int, batch []*request) {
	// Dedupe across requests, remembering each unique key's row index.
	index := make(map[int64]int)
	var uniq []int64
	requested := 0
	for _, r := range batch {
		requested += len(r.keys)
		for _, k := range r.keys {
			if _, ok := index[k]; !ok {
				index[k] = len(uniq)
				uniq = append(uniq, k)
			}
		}
	}

	// One simulated extraction for the whole coalesced batch.
	eb := &extract.Batch{Keys: make([][]int64, s.sys.P.N)}
	eb.Keys[g] = uniq
	res, err := s.sys.ExtractBatch(eb)
	if err != nil {
		s.fail(batch, err)
		return
	}

	// One functional gather for the unique keys, if the system holds bytes.
	var rows []byte
	if s.functional {
		rows = make([]byte, len(uniq)*s.entryBytes)
		if err := s.sys.Lookup(g, uniq, rows); err != nil {
			s.fail(batch, err)
			return
		}
	}

	for _, r := range batch {
		out := Result{SimSeconds: res.Time, BatchKeys: len(uniq)}
		if rows != nil {
			out.Rows = make([]byte, len(r.keys)*s.entryBytes)
			for i, k := range r.keys {
				src := rows[index[k]*s.entryBytes : (index[k]+1)*s.entryBytes]
				copy(out.Rows[i*s.entryBytes:], src)
			}
		}
		r.out <- out
	}

	s.mu.Lock()
	s.stats.Requests += int64(len(batch))
	s.stats.Batches++
	s.stats.RequestedKeys += int64(requested)
	s.stats.UniqueKeys += int64(len(uniq))
	s.stats.SimSeconds += res.Time
	s.mu.Unlock()
}

func (s *Server) fail(batch []*request, err error) {
	for _, r := range batch {
		r.out <- Result{Err: err}
	}
}
