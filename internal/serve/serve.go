// Package serve is the concurrent serving engine on top of core.System: a
// per-GPU worker pulls lookup requests off a queue and coalesces them into
// iteration-sized extraction batches (max-batch / max-wait, the way DLR
// inference servers batch sparse lookups), so many small client requests
// ride one locate/extract pass — the batched-extraction regime the paper's
// model assumes (§3.2, §6.2).
//
// The engine works in both modes of the underlying system: in functional
// mode each request gets its embedding rows back; in timing-only mode it
// gets just the simulated extraction cost of the coalesced batch it rode
// in. Requests never block each other across GPUs, and the system under-
// neath may Refresh concurrently — every coalesced batch resolves against
// one placement snapshot.
package serve

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"ugache/internal/core"
	"ugache/internal/extract"
	"ugache/internal/hashtable"
)

// Config tunes the coalescer.
type Config struct {
	// MaxBatchKeys flushes a batch once this many (non-deduplicated) keys
	// are pending on a GPU (default 8192, one paper-sized iteration).
	MaxBatchKeys int
	// MaxWait flushes a non-empty batch after this long even if it is not
	// full (default 2ms) — the latency/throughput knob.
	MaxWait time.Duration
	// QueueDepth is the per-GPU request queue buffer (default 256).
	QueueDepth int
}

func (c Config) normalize() Config {
	if c.MaxBatchKeys <= 0 {
		c.MaxBatchKeys = 8192
	}
	if c.MaxWait <= 0 {
		c.MaxWait = 2 * time.Millisecond
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 256
	}
	return c
}

// Result is what one request gets back.
type Result struct {
	// Rows holds len(keys) rows of EntryBytes in functional mode; nil in
	// timing-only mode.
	//
	// Ownership: Rows is a caller-owned copy. The server carves one
	// batch-sized allocation into per-request sub-slices at flush time and
	// never touches it again, so the caller may retain or mutate Rows
	// indefinitely. (Requests from the same coalesced batch share that
	// backing array; mutating past len(Rows) via append is the only way to
	// observe a neighbour, and slices handed out are full-capacity-clipped
	// to forbid exactly that.)
	Rows []byte
	// SimSeconds is the modelled extraction time of the coalesced batch
	// this request rode in (shared by every request in the batch).
	SimSeconds float64
	// BatchKeys is the unique-key size of that coalesced batch.
	BatchKeys int
	// Err is set when the lookup failed (bad key, closed server, ...).
	Err error
}

// Stats are cumulative serving counters.
type Stats struct {
	Requests      int64   // requests completed
	Batches       int64   // coalesced batches flushed
	RequestedKeys int64   // keys requested (before dedup)
	UniqueKeys    int64   // unique keys actually extracted
	SimSeconds    float64 // total simulated extraction time
}

// MeanBatchKeys is the mean unique-key size of a coalesced batch.
func (s Stats) MeanBatchKeys() float64 {
	if s.Batches == 0 {
		return 0
	}
	return float64(s.UniqueKeys) / float64(s.Batches)
}

type request struct {
	keys []int64
	out  chan Result
}

// Server owns one worker goroutine per GPU.
type Server struct {
	sys        *core.System
	cfg        Config
	entryBytes int
	functional bool

	queues []chan *request
	done   chan struct{}
	wg     sync.WaitGroup
	closed atomic.Bool

	mu    sync.Mutex
	stats Stats
}

// New starts the serving engine for a built system.
func New(sys *core.System, cfg Config) (*Server, error) {
	if sys == nil {
		return nil, fmt.Errorf("serve: nil system")
	}
	s := &Server{
		sys:        sys,
		cfg:        cfg.normalize(),
		entryBytes: sys.Cache.EntryBytes,
		functional: sys.Functional(),
		queues:     make([]chan *request, sys.P.N),
		done:       make(chan struct{}),
	}
	for g := range s.queues {
		s.queues[g] = make(chan *request, s.cfg.QueueDepth)
		s.wg.Add(1)
		go s.worker(g)
	}
	return s, nil
}

// Handle enqueues one request for GPU gpu and returns the channel its
// Result will arrive on (buffered; the caller need not be ready). The keys
// slice is not retained past completion but must not be mutated until the
// result arrives.
func (s *Server) Handle(gpu int, keys []int64) <-chan Result {
	out := make(chan Result, 1)
	if gpu < 0 || gpu >= len(s.queues) {
		out <- Result{Err: fmt.Errorf("serve: bad gpu %d", gpu)}
		return out
	}
	if len(keys) == 0 {
		out <- Result{}
		return out
	}
	if s.closed.Load() {
		out <- Result{Err: fmt.Errorf("serve: server closed")}
		return out
	}
	r := &request{keys: keys, out: out}
	select {
	case s.queues[gpu] <- r:
	case <-s.done:
		out <- Result{Err: fmt.Errorf("serve: server closed")}
	}
	return out
}

// Lookup is the synchronous form of Handle.
func (s *Server) Lookup(gpu int, keys []int64) (Result, error) {
	res := <-s.Handle(gpu, keys)
	return res, res.Err
}

// Close stops accepting requests, flushes everything already queued, and
// waits for the workers to exit. Safe to call more than once.
func (s *Server) Close() {
	if s.closed.Swap(true) {
		return
	}
	close(s.done)
	s.wg.Wait()
}

// Stats returns a copy of the cumulative counters.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// workerScratch is one worker's reusable flush state: the open-addressing
// dedup table (replacing a throwaway map per flush), the unique-key list,
// the single-GPU extraction batch, the staging buffer for gathered unique
// rows, and the core-level extract/gather scratch. All of it lives for the
// worker's lifetime, so a steady-state flush allocates only the
// caller-owned Result.Rows block.
type workerScratch struct {
	dedup *hashtable.Dedup
	uniq  []int64
	batch extract.Batch
	rows  []byte
	core  *core.Scratch
}

func (s *Server) newWorkerScratch() *workerScratch {
	return &workerScratch{
		dedup: hashtable.NewDedup(s.cfg.MaxBatchKeys),
		batch: extract.Batch{Keys: make([][]int64, s.sys.P.N)},
		core:  core.NewScratch(),
	}
}

// worker is GPU g's coalescing loop: wait for one request, then keep
// accumulating until the batch is full or MaxWait elapsed, then flush.
func (s *Server) worker(g int) {
	defer s.wg.Done()
	q := s.queues[g]
	sc := s.newWorkerScratch()
	timer := time.NewTimer(s.cfg.MaxWait)
	defer timer.Stop()
	for {
		var first *request
		select {
		case first = <-q:
		case <-s.done:
			s.drain(g, q, sc)
			return
		}
		batch := []*request{first}
		pending := len(first.keys)
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		timer.Reset(s.cfg.MaxWait)
	fill:
		for pending < s.cfg.MaxBatchKeys {
			select {
			case r := <-q:
				batch = append(batch, r)
				pending += len(r.keys)
			case <-timer.C:
				break fill
			case <-s.done:
				break fill
			}
		}
		s.flush(g, batch, sc)
	}
}

// drain flushes whatever is still queued at Close time so no Handle caller
// is left waiting.
func (s *Server) drain(g int, q chan *request, sc *workerScratch) {
	for {
		select {
		case r := <-q:
			s.flush(g, []*request{r}, sc)
		default:
			return
		}
	}
}

// flush coalesces the batch's keys, runs one extraction, and fans the
// per-request results back out. Everything it needs lives in the worker's
// scratch; the only steady-state allocation is the batch-sized Rows block
// handed to the callers (see Result.Rows).
func (s *Server) flush(g int, batch []*request, sc *workerScratch) {
	// Dedupe across requests with the generation-stamped open-addressing
	// table, remembering each unique key's row index.
	requested := 0
	for _, r := range batch {
		requested += len(r.keys)
	}
	sc.dedup.Reset(requested)
	uniq := sc.uniq[:0]
	for _, r := range batch {
		for _, k := range r.keys {
			if _, fresh := sc.dedup.Add(k); fresh {
				uniq = append(uniq, k)
			}
		}
	}
	sc.uniq = uniq

	// One simulated extraction for the whole coalesced batch. The result
	// aliases sc.core, so pull out the scalar we need before reusing it.
	sc.batch.Keys[g] = uniq
	res, err := s.sys.ExtractBatchWith(&sc.batch, sc.core)
	sc.batch.Keys[g] = nil
	if err != nil {
		s.fail(batch, err)
		return
	}
	simTime := res.Time

	// One functional gather of the unique rows into the staging buffer, if
	// the system holds bytes.
	var rows []byte
	if s.functional {
		need := len(uniq) * s.entryBytes
		if cap(sc.rows) < need {
			sc.rows = make([]byte, need)
		}
		rows = sc.rows[:need]
		if err := s.sys.LookupWith(g, uniq, rows, sc.core); err != nil {
			s.fail(batch, err)
			return
		}
	}

	// Fan back out: one caller-owned allocation for the whole batch, carved
	// into full-capacity-clipped per-request sub-slices.
	var outBuf []byte
	if rows != nil {
		outBuf = make([]byte, requested*s.entryBytes)
	}
	off := 0
	for _, r := range batch {
		out := Result{SimSeconds: simTime, BatchKeys: len(uniq)}
		if rows != nil {
			end := off + len(r.keys)*s.entryBytes
			out.Rows = outBuf[off:end:end]
			for i, k := range r.keys {
				j, _ := sc.dedup.Index(k)
				copy(out.Rows[i*s.entryBytes:], rows[j*s.entryBytes:(j+1)*s.entryBytes])
			}
			off = end
		}
		r.out <- out
	}

	s.mu.Lock()
	s.stats.Requests += int64(len(batch))
	s.stats.Batches++
	s.stats.RequestedKeys += int64(requested)
	s.stats.UniqueKeys += int64(len(uniq))
	s.stats.SimSeconds += simTime
	s.mu.Unlock()
}

func (s *Server) fail(batch []*request, err error) {
	for _, r := range batch {
		r.out <- Result{Err: err}
	}
}
