package serve

import (
	"testing"
	"time"

	"ugache/internal/core"
	"ugache/internal/emb"
	"ugache/internal/flight"
	"ugache/internal/platform"
	"ugache/internal/rng"
	"ugache/internal/workload"
)

// Serving-engine hot-path microbenchmarks (run with `make bench`). The
// coalesced-lookup benchmarks drive the full flush path — dedup, simulated
// extraction, functional gather, fan-out — one synchronous request per
// batch (MaxBatchKeys 1 flushes immediately, so no MaxWait stalls).
// Results are tracked in BENCH_hotpath.json at the repo root.

func buildBenchServer(b *testing.B, n int, functional bool, fl *flight.Recorder) *Server {
	b.Helper()
	cfg := core.Config{
		Platform:   platform.ServerA(),
		Hotness:    testHotness(n, 1.1, 3),
		EntryBytes: 128,
		CacheRatio: 0.1,
	}
	if functional {
		table, err := emb.NewMaterialized("bench", int64(n), 32, emb.Float32, 7)
		if err != nil {
			b.Fatal(err)
		}
		cfg.EntryBytes = table.EntryBytes()
		cfg.Source = table
	}
	sys, err := core.Build(cfg)
	if err != nil {
		b.Fatal(err)
	}
	srv, err := New(sys, Config{MaxBatchKeys: 1, MaxWait: time.Millisecond, Flight: fl})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(srv.Close)
	return srv
}

func benchRequests(n int64, reqs, keysPer int, seed uint64) [][]int64 {
	z, _ := workload.NewZipf(n, 1.1)
	r := rng.New(seed)
	out := make([][]int64, reqs)
	for i := range out {
		out[i] = make([]int64, keysPer)
		for j := range out[i] {
			out[i][j] = z.Sample(r)
		}
	}
	return out
}

// BenchmarkServeCoalescedTiming is the timing-only serve path: one request
// per coalesced batch, no functional gather.
func BenchmarkServeCoalescedTiming(b *testing.B) {
	srv := buildBenchServer(b, 20000, false, nil)
	reqs := benchRequests(20000, 64, 256, 11)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := srv.Lookup(0, reqs[i%len(reqs)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServeCoalescedFunctional is the full serve path: dedup,
// simulated extraction, functional gather and per-request row fan-out.
func BenchmarkServeCoalescedFunctional(b *testing.B) {
	srv := buildBenchServer(b, 20000, true, nil)
	reqs := benchRequests(20000, 64, 256, 11)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := srv.Lookup(0, reqs[i%len(reqs)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServeCoalescedTimingFlight is the timing path with the flight
// recorder attached — allocs/op must match BenchmarkServeCoalescedTiming
// (the recorder's zero-allocation contract, also pinned by
// TestServeFlightAllocParity).
func BenchmarkServeCoalescedTimingFlight(b *testing.B) {
	srv := buildBenchServer(b, 20000, false, flight.NewRecorder(2, flight.DefaultDepth))
	reqs := benchRequests(20000, 64, 256, 11)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := srv.Lookup(0, reqs[i%len(reqs)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServeCoalescedFunctionalFlight is the full serve path with the
// flight recorder attached.
func BenchmarkServeCoalescedFunctionalFlight(b *testing.B) {
	srv := buildBenchServer(b, 20000, true, flight.NewRecorder(2, flight.DefaultDepth))
	reqs := benchRequests(20000, 64, 256, 11)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := srv.Lookup(0, reqs[i%len(reqs)]); err != nil {
			b.Fatal(err)
		}
	}
}
