package serve

import (
	"sync/atomic"
)

// mpscRing is a bounded multi-producer single-consumer request queue — the
// admission core that replaced the raw per-GPU channels. Producers (Handle
// callers) reserve slots with a CAS on the enqueue ticket and never block: a
// full ring fails the push immediately, which is what turns overload into an
// explicit shed decision instead of an unbounded caller park (DESIGN.md
// §6.7). The single consumer is GPU g's worker goroutine.
//
// The layout is the classic sequence-stamped bounded queue (Vyukov): each
// cell carries a sequence number that encodes whether it is free for the
// producer lap or holds a value for the consumer lap, so push and pop
// synchronize cell-by-cell through one atomic each and neither side ever
// takes a lock.
type mpscRing struct {
	mask  uint64
	cells []ringCell
	enq   atomic.Uint64 // next producer ticket
	deq   atomic.Uint64 // consumer position (written by the worker only)
}

// ringCell is one slot. seq == index means free for the producer whose
// ticket is index; seq == index+1 means the value is visible to the
// consumer; seq == index+capacity means consumed and free for the next lap.
type ringCell struct {
	seq atomic.Uint64
	req *request
	// Pad to a cache line so neighbouring cells do not false-share under
	// producer contention (16 bytes of payload above).
	_ [48]byte
}

// newRing builds a ring with capacity rounded up to a power of two (minimum
// 2, so mask arithmetic always works).
func newRing(capacity int) *mpscRing {
	c := uint64(2)
	for int(c) < capacity {
		c <<= 1
	}
	r := &mpscRing{mask: c - 1, cells: make([]ringCell, c)}
	for i := range r.cells {
		r.cells[i].seq.Store(uint64(i))
	}
	return r
}

// cap returns the ring's (rounded) capacity.
func (r *mpscRing) capacity() int { return len(r.cells) }

// push attempts to enqueue without blocking. Returns false when the ring is
// full — the caller decides whether that is a shed or a bounded wait.
func (r *mpscRing) push(req *request) bool {
	pos := r.enq.Load()
	for {
		cell := &r.cells[pos&r.mask]
		seq := cell.seq.Load()
		switch {
		case seq == pos:
			if r.enq.CompareAndSwap(pos, pos+1) {
				cell.req = req
				cell.seq.Store(pos + 1)
				return true
			}
			pos = r.enq.Load()
		case seq < pos:
			// The cell still holds an unconsumed value from the previous
			// lap: the ring is full.
			return false
		default:
			// Another producer claimed this ticket; chase the new tail.
			pos = r.enq.Load()
		}
	}
}

// pop dequeues one request, or nil when the ring is empty. Must only be
// called by the single consumer goroutine.
func (r *mpscRing) pop() *request {
	pos := r.deq.Load()
	cell := &r.cells[pos&r.mask]
	if cell.seq.Load() != pos+1 {
		return nil
	}
	req := cell.req
	cell.req = nil
	cell.seq.Store(pos + uint64(len(r.cells)))
	r.deq.Store(pos + 1)
	return req
}

// depth is the approximate number of queued requests (exact when quiescent;
// a racy-but-monotonic estimate while producers are active — fine for
// gauges and overload counters).
func (r *mpscRing) depth() int {
	d := int64(r.enq.Load()) - int64(r.deq.Load())
	if d < 0 {
		return 0
	}
	return int(d)
}

// Class is a request's admission class. Inference traffic outranks
// background work (refresh-driven re-warms, speculative lookups) twice
// over: background rides a smaller ring, so it sheds earlier as pressure
// builds, and the worker drains the inference ring first, so background
// never delays a batch that inference traffic is waiting on.
type Class uint8

const (
	// ClassInference is latency-sensitive foreground traffic (the default
	// for Handle/Lookup).
	ClassInference Class = iota
	// ClassBackground is sheddable maintenance traffic: it is admitted only
	// into the smaller low-priority ring and served when no inference
	// request is pending.
	ClassBackground
)

// String names the class for logs and reports.
func (c Class) String() string {
	if c == ClassBackground {
		return "background"
	}
	return "inference"
}

// gpuQueue is one GPU's admission state: the two priority rings plus the
// worker-wakeup and space-freed notification channels. Both channels are
// buffered(1) token slots — a producer's failed non-blocking send means a
// token is already pending, and the receiver re-checks the rings after every
// token, so wakeups are never lost (see the worker loop).
type gpuQueue struct {
	high   *mpscRing // ClassInference
	low    *mpscRing // ClassBackground
	notify chan struct{}
	space  chan struct{}
}

func newGPUQueue(highDepth, lowDepth int) *gpuQueue {
	return &gpuQueue{
		high:   newRing(highDepth),
		low:    newRing(lowDepth),
		notify: make(chan struct{}, 1),
		space:  make(chan struct{}, 1),
	}
}

// push admits one request into its class ring. Never blocks.
func (q *gpuQueue) push(r *request) bool {
	if r.class == ClassBackground {
		return q.low.push(r)
	}
	return q.high.push(r)
}

// pop dequeues the next request, inference first. Consumer-only.
func (q *gpuQueue) pop() *request {
	if r := q.high.pop(); r != nil {
		return r
	}
	return q.low.pop()
}

// depth is the combined queued-request estimate across both classes.
func (q *gpuQueue) depth() int { return q.high.depth() + q.low.depth() }

// wake posts the worker-wakeup token (no-op if one is already pending).
func (q *gpuQueue) wake() {
	select {
	case q.notify <- struct{}{}:
	default:
	}
}

// freed posts the space-freed token bounded-wait admitters sleep on.
func (q *gpuQueue) freed() {
	select {
	case q.space <- struct{}{}:
	default:
	}
}
