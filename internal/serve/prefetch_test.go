package serve

import (
	"bytes"
	"sync"
	"testing"
	"time"

	"ugache/internal/rng"
	"ugache/internal/telemetry"
	"ugache/internal/workload"
)

// TestServePrefetchDisabled: a server built without lookahead rejects
// windows, exposes no arena, and WaitPrefetch is a no-op.
func TestServePrefetchDisabled(t *testing.T) {
	sys, _ := buildFunctional(t, 1000)
	srv, err := New(sys, Config{MaxWait: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if srv.Prefetch(0, []int64{1, 2, 3}) {
		t.Fatal("Prefetch accepted with Lookahead=0")
	}
	if srv.StagingArena(0) != nil {
		t.Fatal("staging arena exists with Lookahead=0")
	}
	srv.WaitPrefetch(0) // must not block
	if _, err := srv.Lookup(0, []int64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
}

// TestServePrefetchFunctionalRows runs a perfectly announced stream against
// a functional system: every batch is prefetched, waited for, then served,
// and the returned rows must be byte-identical to the source table —
// staged hits must be indistinguishable from demand fills.
func TestServePrefetchFunctionalRows(t *testing.T) {
	sys, table := buildFunctional(t, 3000)
	reg := telemetry.NewRegistry(sys.P.N)
	srv, err := New(sys, Config{
		MaxBatchKeys: 1 << 20,
		MaxWait:      time.Millisecond,
		Telemetry:    reg,
		Lookahead:    4,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	r := rng.New(11)
	z, _ := workload.NewZipf(3000, 1.05)
	eb := table.EntryBytes()
	want := make([]byte, eb)
	for b := 0; b < 20; b++ {
		keys := make([]int64, 64)
		for j := range keys {
			keys[j] = z.Sample(r)
		}
		if !srv.Prefetch(0, keys) {
			t.Fatalf("batch %d: prefetch rejected", b)
		}
		srv.WaitPrefetch(0)
		res, err := srv.Lookup(0, keys)
		if err != nil {
			t.Fatal(err)
		}
		for j, k := range keys {
			table.ReadRow(k, want)
			if !bytes.Equal(res.Rows[j*eb:(j+1)*eb], want) {
				t.Fatalf("batch %d key %d: wrong row", b, k)
			}
		}
	}
	if hits := sampleValue(t, reg, "serve_fill_prefetch_hit"); hits == 0 {
		t.Fatal("perfectly announced stream produced zero prefetch hits")
	}
	if dropped := sampleValue(t, reg, "serve_prefetch_dropped_windows_total"); dropped != 0 {
		t.Fatalf("%g windows dropped despite WaitPrefetch pacing", dropped)
	}
	if errs := sampleValue(t, reg, "serve_prefetch_errors_total"); errs != 0 {
		t.Fatalf("%g prefetch errors", errs)
	}
}

// TestServePrefetchStaleServing pins the bounded-staleness contract end to
// end: rows staged under placement version v are consumed after a Refresh
// bumped the version, within the S-batch window, and are surfaced through
// the stale-serving counter and gauge.
func TestServePrefetchStaleServing(t *testing.T) {
	sys, table := buildFunctional(t, 3000)
	reg := telemetry.NewRegistry(sys.P.N)
	srv, err := New(sys, Config{
		MaxBatchKeys: 1 << 20,
		MaxWait:      time.Millisecond,
		Telemetry:    reg,
		Lookahead:    2,
		StaleBatches: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	keys := []int64{2999, 2500, 2001, 1777, 1234}
	if !srv.Prefetch(0, keys) {
		t.Fatal("prefetch rejected")
	}
	srv.WaitPrefetch(0)
	staged := sampleValue(t, reg, "serve_prefetch_staged_keys_total")
	if staged == 0 {
		t.Fatal("nothing staged; pick colder keys")
	}
	// Swap the placement: every staged row is now from an outgoing version.
	if _, err := sys.Refresh(testHotness(3000, 0.8, 99), 0.001, quickRefreshConfig()); err != nil {
		t.Fatal(err)
	}
	res, err := srv.Lookup(0, keys)
	if err != nil {
		t.Fatal(err)
	}
	eb := table.EntryBytes()
	want := make([]byte, eb)
	for j, k := range keys {
		table.ReadRow(k, want)
		if !bytes.Equal(res.Rows[j*eb:(j+1)*eb], want) {
			t.Fatalf("stale-served key %d: wrong row", k)
		}
	}
	stale := sampleValue(t, reg, "serve_stale_served_keys_total")
	hits := sampleValue(t, reg, "serve_fill_prefetch_hit")
	if hits == 0 {
		t.Fatal("no staged hits survived the refresh despite S=8")
	}
	if stale != hits {
		t.Fatalf("stale served %g, want every one of the %g hits (all staged pre-refresh)", stale, hits)
	}

	// With S=0 the same sequence must instead discard the staged rows.
	srv0, err := New(sys, Config{
		MaxBatchKeys: 1 << 20,
		MaxWait:      time.Millisecond,
		Lookahead:    2,
		StaleBatches: 0,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv0.Close()
	if !srv0.Prefetch(0, keys) {
		t.Fatal("prefetch rejected")
	}
	srv0.WaitPrefetch(0)
	if _, err := sys.Refresh(testHotness(3000, 1.2, 7), 0.001, quickRefreshConfig()); err != nil {
		t.Fatal(err)
	}
	if _, err := srv0.Lookup(0, keys); err != nil {
		t.Fatal(err)
	}
	if got := sampleValue(t, srv0.Metrics(), "serve_stale_served_keys_total"); got != 0 {
		t.Fatalf("S=0 served %g stale keys", got)
	}
}

// TestServePrefetchRefreshRace races the whole pipeline under -race:
// prefetch completions committing into the arenas, serving flushes
// consuming staged rows, and concurrent Refreshes swapping the placement
// underneath — returned rows must stay byte-correct throughout (the
// serve-level form of the staging-arena lifecycle property).
func TestServePrefetchRefreshRace(t *testing.T) {
	sys, table := buildFunctional(t, 2000)
	srv, err := New(sys, Config{
		MaxBatchKeys: 1 << 20,
		MaxWait:      200 * time.Microsecond,
		Lookahead:    3,
		StaleBatches: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	stop := make(chan struct{})
	var refresher sync.WaitGroup
	refresher.Add(1)
	go func() {
		defer refresher.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			alpha := 0.8 + 0.1*float64(i%5)
			if _, err := sys.Refresh(testHotness(2000, alpha, uint64(i+1)), 0.001, quickRefreshConfig()); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	const clients = 3
	errs := make(chan error, clients)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			r := rng.New(uint64(c + 21))
			z, _ := workload.NewZipf(2000, 1.0)
			eb := table.EntryBytes()
			want := make([]byte, eb)
			g := c % sys.P.N
			for b := 0; b < 40; b++ {
				keys := make([]int64, 32)
				for j := range keys {
					keys[j] = z.Sample(r)
				}
				srv.Prefetch(g, keys) // advisory: drops are fine here
				res, err := srv.Lookup(g, keys)
				if err != nil {
					errs <- err
					return
				}
				for j, k := range keys {
					table.ReadRow(k, want)
					if !bytes.Equal(res.Rows[j*eb:(j+1)*eb], want) {
						t.Errorf("client %d batch %d key %d: wrong row under refresh race", c, b, k)
						return
					}
				}
			}
		}(c)
	}
	wg.Wait()
	close(stop)
	refresher.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
