package serve

import (
	"errors"
	"sync"
	"testing"
	"time"

	"ugache/internal/core"
	"ugache/internal/platform"
	"ugache/internal/telemetry"
)

// parkWorker admits one request on GPU 0 and waits long enough for the
// worker to pop it and park in the fill loop (MaxWait must be large and
// MaxBatchKeys above the request's key count). While parked, the worker
// consumes nothing, so direct ring pushes below stay queued — the white-box
// setup the deterministic admission tests build on.
func parkWorker(t *testing.T, srv *Server) <-chan Result {
	t.Helper()
	ch := srv.Handle(0, []int64{1, 2})
	deadline := time.Now().Add(5 * time.Second)
	for {
		if inf, bg := srv.QueueDepths(0); inf == 0 && bg == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("worker never picked up the parking request")
		}
		time.Sleep(time.Millisecond)
	}
	// After the pop above the worker polls the ring once more before parking
	// in its fill-loop select; give it a beat so direct pushes stay queued.
	time.Sleep(20 * time.Millisecond)
	return ch
}

// fillRing stuffs n requests straight into GPU 0's ring of the given class
// without posting the wakeup token, so the parked worker does not drain
// them. Returns their result channels.
func fillRing(t *testing.T, srv *Server, n int, class Class) []<-chan Result {
	t.Helper()
	chans := make([]<-chan Result, n)
	for i := 0; i < n; i++ {
		out := make(chan Result, 1)
		r := &request{keys: []int64{int64(i % 50)}, out: out, enqueued: time.Now(), class: class}
		if !srv.queues[0].push(r) {
			t.Fatalf("direct push %d failed below ring capacity", i)
		}
		chans[i] = out
	}
	return chans
}

func admissionSystem(t *testing.T) *core.System {
	t.Helper()
	sys, err := core.Build(core.Config{
		Platform:   platform.ServerA(),
		Hotness:    testHotness(200, 1.1, 9),
		EntryBytes: 32,
		CacheRatio: 0.2,
	})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// TestAdmissionFastFail: with AdmitWait unset, a full inference ring sheds
// immediately with ErrOverload, counts the shed, and later-drained requests
// still complete.
func TestAdmissionFastFail(t *testing.T) {
	srv, err := New(admissionSystem(t), Config{
		MaxBatchKeys: 1 << 20,
		MaxWait:      time.Minute,
		QueueDepth:   2,
		TraceDepth:   -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	parked := parkWorker(t, srv)
	queued := fillRing(t, srv, 2, ClassInference)

	res := <-srv.Handle(0, []int64{7})
	if !errors.Is(res.Err, ErrOverload) {
		t.Fatalf("full ring: got err %v, want ErrOverload", res.Err)
	}
	if got := srv.met.rejected.Value(); got != 1 {
		t.Fatalf("serve_rejected_total = %d, want 1", got)
	}
	if inf, bg := srv.QueueDepths(0); inf != 2 || bg != 0 {
		t.Fatalf("QueueDepths = (%d, %d), want (2, 0)", inf, bg)
	}

	srv.Close()
	for i, ch := range append([]<-chan Result{parked}, queued...) {
		select {
		case r := <-ch:
			if r.Err != nil {
				t.Fatalf("queued request %d failed after Close: %v", i, r.Err)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("queued request %d stranded", i)
		}
	}
}

// TestAdmissionBackgroundShedsFirst: the background class rides its own
// smaller ring — with it saturated, background sheds (and is counted in the
// background-shed metric) while inference traffic still admits.
func TestAdmissionBackgroundShedsFirst(t *testing.T) {
	srv, err := New(admissionSystem(t), Config{
		MaxBatchKeys:         1 << 20,
		MaxWait:              time.Minute,
		QueueDepth:           16,
		BackgroundQueueDepth: 2,
		TraceDepth:           -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	parked := parkWorker(t, srv)
	queued := fillRing(t, srv, 2, ClassBackground)

	res := <-srv.HandleClass(0, []int64{7}, ClassBackground)
	if !errors.Is(res.Err, ErrOverload) {
		t.Fatalf("full background ring: got err %v, want ErrOverload", res.Err)
	}
	if got := srv.met.rejectedBackground.Value(); got != 1 {
		t.Fatalf("serve_rejected_background_total = %d, want 1", got)
	}
	infCh := srv.Handle(0, []int64{8})
	if got := srv.met.rejected.Value(); got != 1 {
		t.Fatalf("inference admission shed while only background was full (rejected=%d)", got)
	}

	srv.Close()
	for i, ch := range append([]<-chan Result{parked, infCh}, queued...) {
		r := <-ch
		if r.Err != nil {
			t.Fatalf("request %d failed after Close: %v", i, r.Err)
		}
	}
}

// TestAdmitWaitAdmits: a bounded-wait admission parked on a full ring is
// admitted once the worker's flushes free space, and the late admit is
// counted.
func TestAdmitWaitAdmits(t *testing.T) {
	// MaxWait is the space-freeing clock here: long enough (vs parkWorker's
	// 50ms settle) that the worker is still parked while the ring is filled,
	// short enough that its flushes free space well before the 10s admission
	// deadline.
	srv, err := New(admissionSystem(t), Config{
		MaxBatchKeys: 1 << 20,
		MaxWait:      300 * time.Millisecond,
		QueueDepth:   2,
		AdmitWait:    10 * time.Second,
		TraceDepth:   -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	parked := parkWorker(t, srv)
	queued := fillRing(t, srv, 2, ClassInference)

	// Parks on the space signal until a MaxWait flush frees ring slots.
	res := <-srv.Handle(0, []int64{9})
	if res.Err != nil {
		t.Fatalf("bounded-wait admission failed: %v", res.Err)
	}
	if got := srv.met.admitWaitAdmitted.Value(); got != 1 {
		t.Fatalf("serve_admit_wait_admitted_total = %d, want 1", got)
	}
	if got := srv.met.rejected.Value(); got != 0 {
		t.Fatalf("serve_rejected_total = %d, want 0", got)
	}
	srv.Close()
	for _, ch := range append([]<-chan Result{parked}, queued...) {
		if r := <-ch; r.Err != nil {
			t.Fatalf("queued request failed: %v", r.Err)
		}
	}
}

// TestAdmitWaitExpires: with the worker parked (huge MaxWait) nothing frees
// space, so a bounded wait sheds with ErrOverload once its deadline fires.
func TestAdmitWaitExpires(t *testing.T) {
	srv, err := New(admissionSystem(t), Config{
		MaxBatchKeys: 1 << 20,
		MaxWait:      time.Minute,
		QueueDepth:   2,
		AdmitWait:    50 * time.Millisecond,
		TraceDepth:   -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	parked := parkWorker(t, srv)
	queued := fillRing(t, srv, 2, ClassInference)

	start := time.Now()
	res := <-srv.Handle(0, []int64{3})
	if !errors.Is(res.Err, ErrOverload) {
		t.Fatalf("expired bounded wait: got err %v, want ErrOverload", res.Err)
	}
	if waited := time.Since(start); waited < 40*time.Millisecond || waited > 5*time.Second {
		t.Fatalf("bounded wait lasted %v, want ~50ms", waited)
	}
	srv.Close()
	for _, ch := range append([]<-chan Result{parked}, queued...) {
		if r := <-ch; r.Err != nil {
			t.Fatalf("queued request failed: %v", r.Err)
		}
	}
}

// TestDrainCoalesces is the regression test for the one-batch-per-leftover
// drain: requests still queued at Close must be coalesced up to MaxBatchKeys
// per flush. 20 requests x 4 keys against MaxBatchKeys 16 must drain in
// exactly ceil(80/16) = 5 batches, not 20.
func TestDrainCoalesces(t *testing.T) {
	srv, err := New(admissionSystem(t), Config{
		MaxBatchKeys: 16,
		QueueDepth:   32,
		TraceDepth:   -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Retire the live workers first so the rings below belong to the test.
	srv.Close()

	const reqs = 20
	chans := make([]<-chan Result, reqs)
	for i := 0; i < reqs; i++ {
		out := make(chan Result, 1)
		keys := []int64{int64(i), int64(i + 50), int64(i + 100), int64(i + 150)}
		r := &request{keys: keys, out: out, enqueued: time.Now(), class: ClassInference}
		if !srv.queues[0].push(r) {
			t.Fatalf("push %d failed", i)
		}
		chans[i] = out
	}
	srv.drain(0, srv.queues[0], srv.newWorkerScratch(0))

	for i, ch := range chans {
		select {
		case r := <-ch:
			if r.Err != nil {
				t.Fatalf("drained request %d failed: %v", i, r.Err)
			}
		default:
			t.Fatalf("drained request %d got no result", i)
		}
	}
	st := srv.Stats()
	if st.Batches != 5 {
		t.Fatalf("drain flushed %d batches for %d requests, want 5 coalesced", st.Batches, reqs)
	}
	if got := srv.met.fill[telemetry.FillDrain].Value(); got != 5 {
		t.Fatalf("serve_batch_fill_drain_total = %d, want 5", got)
	}
}

// TestOverloadCloseFlood is the shutdown/overload interaction test: many
// goroutines flood Handle against deliberately tiny queues while Close races
// them, in both fast-fail and bounded-wait admission modes. No caller may be
// stranded, Close must return promptly, and every accepted-before-Close
// request must get a Result. Run with -race.
func TestOverloadCloseFlood(t *testing.T) {
	sys := admissionSystem(t)
	for _, mode := range []struct {
		name      string
		admitWait time.Duration
	}{
		{"fast-fail", 0},
		{"bounded-wait", 2 * time.Millisecond},
	} {
		t.Run(mode.name, func(t *testing.T) {
			for round := 0; round < 10; round++ {
				srv, err := New(sys, Config{
					MaxBatchKeys: 8,
					MaxWait:      20 * time.Microsecond,
					QueueDepth:   2,
					AdmitWait:    mode.admitWait,
					TraceDepth:   -1,
				})
				if err != nil {
					t.Fatal(err)
				}
				const clients = 8
				const perClient = 50
				var chans [clients * perClient]<-chan Result
				var wg sync.WaitGroup
				start := make(chan struct{})
				for c := 0; c < clients; c++ {
					wg.Add(1)
					go func(c int) {
						defer wg.Done()
						<-start
						for i := 0; i < perClient; i++ {
							class := ClassInference
							if i%4 == 3 {
								class = ClassBackground
							}
							chans[c*perClient+i] = srv.HandleClass((c+i)%sys.P.N, []int64{int64(i % 200)}, class)
						}
					}(c)
				}
				closed := make(chan time.Duration, 1)
				go func() {
					<-start
					time.Sleep(time.Duration(round*37) * time.Microsecond)
					t0 := time.Now()
					srv.Close()
					closed <- time.Since(t0)
				}()
				close(start)
				wg.Wait()
				select {
				case d := <-closed:
					if d > 5*time.Second {
						t.Fatalf("Close took %v under flood", d)
					}
				case <-time.After(10 * time.Second):
					t.Fatal("Close stalled under flood")
				}
				deadline := time.After(10 * time.Second)
				for i, ch := range chans {
					select {
					case res := <-ch:
						if res.Err != nil && !errors.Is(res.Err, ErrClosed) && !errors.Is(res.Err, ErrOverload) {
							t.Fatalf("round %d request %d: unexpected error %v", round, i, res.Err)
						}
					case <-deadline:
						t.Fatalf("round %d: request %d stranded", round, i)
					}
				}
			}
		})
	}
}

// TestWindowPoolable pins the prefetch pool's retention bound.
func TestWindowPoolable(t *testing.T) {
	const mbk = 1024
	if !windowPoolable(0, mbk) || !windowPoolable(mbk, mbk) || !windowPoolable(windowPoolMult*mbk, mbk) {
		t.Fatal("windowPoolable rejected a window within the retention bound")
	}
	if windowPoolable(windowPoolMult*mbk+1, mbk) {
		t.Fatal("windowPoolable retained an oversized window")
	}
}
