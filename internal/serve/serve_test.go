package serve

import (
	"bytes"
	"math"
	"sync"
	"testing"
	"time"

	"ugache/internal/cache"
	"ugache/internal/core"
	"ugache/internal/emb"
	"ugache/internal/platform"
	"ugache/internal/rng"
	"ugache/internal/workload"
)

func testHotness(n int, alpha float64, seed uint64) workload.Hotness {
	r := rng.New(seed)
	perm := r.Perm(n)
	h := make(workload.Hotness, n)
	for rank := 0; rank < n; rank++ {
		h[perm[rank]] = math.Pow(float64(rank+1), -alpha)
	}
	return h
}

func quickRefreshConfig() cache.RefreshConfig {
	cfg := cache.DefaultRefreshConfig()
	cfg.BatchEntries = 500
	return cfg
}

func buildFunctional(t *testing.T, n int) (*core.System, *emb.Table) {
	t.Helper()
	table, err := emb.NewMaterialized("t", int64(n), 8, emb.Float32, 7)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := core.Build(core.Config{
		Platform:   platform.ServerA(),
		Hotness:    testHotness(n, 1.1, 3),
		EntryBytes: table.EntryBytes(),
		CacheRatio: 0.1,
		Source:     table,
	})
	if err != nil {
		t.Fatal(err)
	}
	return sys, table
}

func TestServeFunctionalRows(t *testing.T) {
	sys, table := buildFunctional(t, 3000)
	srv, err := New(sys, Config{MaxWait: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	const clients = 8
	const perClient = 20
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			r := rng.New(uint64(c + 1))
			z, _ := workload.NewZipf(3000, 1.1)
			want := make([]byte, table.EntryBytes())
			for i := 0; i < perClient; i++ {
				keys := make([]int64, 30)
				for j := range keys {
					keys[j] = z.Sample(r)
				}
				res, err := srv.Lookup(c%sys.P.N, keys)
				if err != nil {
					errs <- err
					return
				}
				if res.SimSeconds <= 0 || res.BatchKeys <= 0 {
					t.Errorf("degenerate result %+v", res)
					return
				}
				for j, k := range keys {
					table.ReadRow(k, want)
					got := res.Rows[j*table.EntryBytes() : (j+1)*table.EntryBytes()]
					if !bytes.Equal(got, want) {
						t.Errorf("client %d key %d: wrong row", c, k)
						return
					}
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st := srv.Stats()
	if st.Requests != clients*perClient {
		t.Fatalf("stats count %d requests, want %d", st.Requests, clients*perClient)
	}
	if st.UniqueKeys > st.RequestedKeys {
		t.Fatalf("dedup increased keys: %d > %d", st.UniqueKeys, st.RequestedKeys)
	}
}

func TestServeCoalesces(t *testing.T) {
	sys, _ := buildFunctional(t, 2000)
	// Generous deadline and batch: concurrent requests must share batches.
	srv, err := New(sys, Config{MaxBatchKeys: 1 << 20, MaxWait: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	const reqs = 40
	chans := make([]<-chan Result, reqs)
	for i := 0; i < reqs; i++ {
		chans[i] = srv.Handle(0, []int64{int64(i), int64(i + 100)})
	}
	for i, ch := range chans {
		if res := <-ch; res.Err != nil {
			t.Fatalf("request %d: %v", i, res.Err)
		}
	}
	st := srv.Stats()
	if st.Batches >= reqs {
		t.Fatalf("no coalescing: %d batches for %d requests", st.Batches, reqs)
	}
	if st.MeanBatchKeys() <= 2 {
		t.Fatalf("mean batch size %g not coalesced", st.MeanBatchKeys())
	}
}

func TestServeMaxBatchFlushesEarly(t *testing.T) {
	sys, _ := buildFunctional(t, 2000)
	// Tiny max batch with a deadline far beyond the test: only the size
	// trigger can flush follow-up batches.
	srv, err := New(sys, Config{MaxBatchKeys: 4, MaxWait: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	done := make(chan Result, 1)
	go func() { done <- <-srv.Handle(1, []int64{1, 2, 3, 4, 5}) }()
	select {
	case res := <-done:
		if res.Err != nil {
			t.Fatal(res.Err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("size-triggered flush did not happen")
	}
}

func TestServeTimingOnlyMode(t *testing.T) {
	sys, err := core.Build(core.Config{
		Platform:   platform.ServerA(),
		Hotness:    testHotness(1000, 1.1, 1),
		EntryBytes: 64,
		CacheRatio: 0.1,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(sys, Config{MaxWait: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	res, err := srv.Lookup(0, []int64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows != nil {
		t.Fatal("timing-only mode returned rows")
	}
	if res.SimSeconds <= 0 {
		t.Fatal("no simulated time")
	}
}

func TestServeEdgeCases(t *testing.T) {
	sys, _ := buildFunctional(t, 1000)
	srv, err := New(sys, Config{MaxWait: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if res := <-srv.Handle(99, []int64{1}); res.Err == nil {
		t.Fatal("bad gpu accepted")
	}
	if res := <-srv.Handle(0, nil); res.Err != nil || res.Rows != nil {
		t.Fatalf("empty request: %+v", res)
	}
	if res := <-srv.Handle(0, []int64{-1}); res.Err == nil {
		t.Fatal("bad key accepted")
	}
	srv.Close()
	srv.Close() // idempotent
	if res := <-srv.Handle(0, []int64{1}); res.Err == nil {
		t.Fatal("closed server accepted a request")
	}
	if _, err := New(nil, Config{}); err == nil {
		t.Fatal("nil system accepted")
	}
}

func TestServeDuringRefresh(t *testing.T) {
	sys, table := buildFunctional(t, 3000)
	srv, err := New(sys, Config{MaxWait: 500 * time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			r := rng.New(uint64(c + 11))
			z, _ := workload.NewZipf(3000, 1.1)
			want := make([]byte, table.EntryBytes())
			for {
				select {
				case <-stop:
					return
				default:
				}
				keys := []int64{z.Sample(r), z.Sample(r), z.Sample(r)}
				res, err := srv.Lookup(c%sys.P.N, keys)
				if err != nil {
					t.Errorf("lookup during refresh: %v", err)
					return
				}
				for j, k := range keys {
					table.ReadRow(k, want)
					if !bytes.Equal(res.Rows[j*table.EntryBytes():(j+1)*table.EntryBytes()], want) {
						t.Errorf("torn row for key %d during refresh", k)
						return
					}
				}
			}
		}(c)
	}

	h := testHotness(3000, 1.1, 3)
	for round := 0; round < 3; round++ {
		h2 := make(workload.Hotness, len(h))
		for i := range h2 {
			if round%2 == 0 {
				h2[i] = h[len(h)-1-i]
			} else {
				h2[i] = h[i]
			}
		}
		if _, err := sys.Refresh(h2, 0.001, quickRefreshConfig()); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
}
