package serve

import (
	"bytes"
	"testing"
	"time"

	"ugache/internal/timeline"
)

// TestServeTimelineSpans drives a functional server with a timeline
// recorder attached and checks the exported span trees: every flushed batch
// is a parent span with its phase children nested inside, fluid-sim link
// flows land on the sim tracks with sane utilizations, and the whole export
// passes the Chrome trace validator.
func TestServeTimelineSpans(t *testing.T) {
	sys, _ := buildFunctional(t, 3000)
	rec := timeline.NewRecorder(sys.P.N, 4096)
	srv, err := New(sys, Config{MaxWait: time.Millisecond, Timeline: rec})
	if err != nil {
		t.Fatal(err)
	}
	keys := []int64{1, 7, 7, 2999, 42, 0}
	for i := 0; i < 4; i++ {
		for g := 0; g < 2; g++ {
			if _, err := srv.Lookup(g, keys); err != nil {
				t.Fatal(err)
			}
		}
	}
	srv.Close()

	type spanKey struct {
		tid  int32
		name string
	}
	batches := 0
	children := map[spanKey]int{}
	linkFlows := 0
	var root *timeline.Event
	for _, ev := range rec.Events() {
		ev := ev
		switch {
		case ev.PID == timeline.ProcServe && ev.Name == "batch":
			batches++
			if root == nil {
				root = &ev
			}
		case ev.PID == timeline.ProcServe:
			children[spanKey{ev.TID, ev.Name}]++
		case ev.PID == timeline.ProcSim && ev.Name == "link-flow":
			linkFlows++
			var util float64
			for i := int32(0); i < ev.NArgs; i++ {
				if ev.Args[i].Key == "util" {
					util = ev.Args[i].Val
				}
			}
			if util <= 0 || util > 1+1e-9 {
				t.Fatalf("link-flow util %g out of (0, 1]", util)
			}
		}
	}
	if batches == 0 {
		t.Fatal("no batch spans recorded")
	}
	if linkFlows == 0 {
		t.Fatal("no link-flow spans recorded")
	}
	for _, name := range []string{"queue-wait", "coalesce", "extract", "gather", "reply"} {
		found := false
		for k := range children {
			if k.name == name {
				found = true
			}
		}
		if !found {
			t.Fatalf("no %q child spans (children: %v)", name, children)
		}
	}

	// Children of the first batch nest within it (same tid, same tree).
	for _, ev := range rec.Events() {
		if ev.PID != timeline.ProcServe || ev.Name == "batch" || ev.TID != root.TID {
			continue
		}
		if ev.Start < root.Start+root.Dur+1e-9 && ev.Start+ev.Dur > root.Start+root.Dur+1e-6 {
			t.Fatalf("%s span [%g, %g] leaks past its batch [%g, %g]",
				ev.Name, ev.Start, ev.Start+ev.Dur, root.Start, root.Start+root.Dur)
		}
		break // only the first tree; later batches interleave
	}

	var buf bytes.Buffer
	if err := rec.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	rep, err := timeline.Validate(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Names["batch"] != batches {
		t.Fatalf("export has %d batch spans, recorder had %d", rep.Names["batch"], batches)
	}
}

// TestServeNoTimelineNoSpans pins the default: without a recorder the
// worker scratch carries no span shard and sim phase recording stays off.
func TestServeNoTimelineNoSpans(t *testing.T) {
	sys, _ := buildFunctional(t, 1000)
	srv, err := New(sys, Config{MaxWait: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if _, err := srv.Lookup(0, []int64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if srv.tl != nil {
		t.Fatal("server has a recorder without one configured")
	}
}
