package serve

import (
	"sync"
	"time"

	"ugache/internal/cache"
	"ugache/internal/core"
	"ugache/internal/extract"
	"ugache/internal/flight"
	"ugache/internal/hashtable"
	"ugache/internal/timeline"
)

// prefetchWindow is one announced lookahead window: a copy of the keys a
// client expects to request L batches from now. Windows are pooled so the
// announce path allocates only on depth growth.
type prefetchWindow struct {
	keys []int64
}

// windowPoolMult bounds the key capacity a recycled window may pin in the
// pool, as a multiple of MaxBatchKeys. A single oversized announce would
// otherwise keep its whole backing array alive for the server's lifetime —
// sync.Pool has no size discipline of its own.
const windowPoolMult = 4

// putWindow recycles one window, dropping it (for the GC) when its capacity
// exceeds the pool's retention bound.
func (s *Server) putWindow(w *prefetchWindow) {
	if !windowPoolable(cap(w.keys), s.cfg.MaxBatchKeys) {
		return
	}
	w.keys = w.keys[:0]
	s.windowPool.Put(w)
}

// windowPoolable reports whether a window with the given key capacity may
// return to the announce pool.
func windowPoolable(capKeys, maxBatchKeys int) bool {
	return capKeys <= windowPoolMult*maxBatchKeys
}

// pendingGate tracks one GPU's in-flight announced windows and lets
// WaitPrefetch block on their completion through a condition variable —
// the prefetch worker broadcasts when the count returns to zero, so waiters
// sleep instead of burning a core in a sleep-poll loop.
type pendingGate struct {
	mu   sync.Mutex
	cond *sync.Cond
	n    int64
}

func newPendingGate() *pendingGate {
	g := &pendingGate{}
	g.cond = sync.NewCond(&g.mu)
	return g
}

// add moves the in-flight count by d, waking waiters when it reaches zero.
func (g *pendingGate) add(d int64) {
	g.mu.Lock()
	g.n += d
	if g.n <= 0 {
		g.cond.Broadcast()
	}
	g.mu.Unlock()
}

// wait blocks until the in-flight count is zero.
func (g *pendingGate) wait() {
	g.mu.Lock()
	for g.n > 0 {
		g.cond.Wait()
	}
	g.mu.Unlock()
}

// Prefetch announces the keys of an upcoming batch on GPU gpu so the
// prefetch worker can stage their would-be misses ahead of the batch's
// flush (the BagPipe-style lookahead oracle: a DLR/GNN input pipeline knows
// its next several batches while compute runs). The keys are copied; the
// caller keeps ownership. The call never blocks: when the prefetch queue is
// full the window is dropped (and counted) — prefetching is advisory, the
// batch will simply pay its demand misses. Returns whether the window was
// accepted. A server built with Config.Lookahead == 0 rejects all windows.
func (s *Server) Prefetch(gpu int, keys []int64) bool {
	if s.prefetchQ == nil || gpu < 0 || gpu >= len(s.prefetchQ) || len(keys) == 0 {
		return false
	}
	s.closeMu.RLock()
	defer s.closeMu.RUnlock()
	if s.closed {
		return false
	}
	w := s.windowPool.Get().(*prefetchWindow)
	w.keys = append(w.keys[:0], keys...)
	s.prefetchGate[gpu].add(1)
	select {
	case s.prefetchQ[gpu] <- w:
		return true
	default:
		s.prefetchGate[gpu].add(-1)
		s.putWindow(w)
		s.met.prefetchDropped.Add(gpu, 1)
		return false
	}
}

// WaitPrefetch blocks until GPU gpu's prefetch worker has fully staged (or
// dropped) every window announced so far — the deterministic
// perfect-overlap sync point the bench and tests use. Serving itself never
// calls this: a flush consumes whatever happens to be staged. Waiters sleep
// on the gate's condition variable until the worker drains the count to
// zero; there is no polling.
func (s *Server) WaitPrefetch(gpu int) {
	if s.prefetchGate == nil || gpu < 0 || gpu >= len(s.prefetchGate) {
		return
	}
	s.prefetchGate[gpu].wait()
}

// StagingArena exposes GPU gpu's staging arena (nil when lookahead is
// disabled) for tests and diagnostics.
func (s *Server) StagingArena(gpu int) *cache.StagingArena {
	if s.staging == nil || gpu < 0 || gpu >= len(s.staging) {
		return nil
	}
	return s.staging[gpu]
}

// prefetchScratch is one prefetch worker's reusable state, mirroring
// workerScratch: its own dedup table, fetch list, single-GPU extraction
// batch, gathered-row buffer and core scratch, so a steady-state window
// costs no allocation beyond buffer growth.
type prefetchScratch struct {
	dedup *hashtable.Dedup
	fetch []int64
	batch extract.Batch
	rows  []byte
	core  *core.Scratch
	span  *timeline.Shard
}

func (s *Server) newPrefetchScratch(g int) *prefetchScratch {
	sc := &prefetchScratch{
		dedup: hashtable.NewDedup(s.cfg.MaxBatchKeys),
		batch: extract.Batch{Keys: make([][]int64, s.sys.P.N)},
		core:  core.NewScratch(),
	}
	if s.tl != nil {
		sc.span = s.tl.Shard(g)
	}
	return sc
}

// prefetchWorker is GPU g's staging loop: dequeue an announced window,
// filter it down to keys worth moving, extract them off the critical path,
// and commit the rows into the staging arena. Runs only when
// Config.Lookahead > 0.
func (s *Server) prefetchWorker(g int) {
	defer s.wg.Done()
	q := s.prefetchQ[g]
	sc := s.newPrefetchScratch(g)
	for {
		select {
		case w := <-q:
			s.prefetchWindow(g, w, sc)
		case <-s.done:
			// Shutdown: discard what is still queued — prefetching is
			// advisory and nobody will flush against it anymore. Close's
			// write lock has excluded every Prefetch caller, so an empty
			// poll means empty for good.
			for {
				select {
				case w := <-q:
					s.prefetchGate[g].add(-1)
					s.putWindow(w)
				default:
					return
				}
			}
		}
	}
}

// prefetchWindow stages one announced window. Keys already resolving to the
// local tier under the current placement, keys already staged and still
// servable, and duplicate/out-of-range keys are filtered out; the remainder
// is extracted (charged to the prefetch track, not serving latency) and
// committed under the placement version the rows were gathered against.
func (s *Server) prefetchWindow(g int, w *prefetchWindow, sc *prefetchScratch) {
	defer func() {
		s.prefetchGate[g].add(-1)
		s.putWindow(w)
	}()
	var tStart, tFilter, tExtract float64
	if sc.span != nil {
		tStart = s.tl.Now()
	}
	arena := s.staging[g]
	pl := s.sys.Placement()
	version := s.sys.PlacementVersion()
	now := s.batchSeq[g].Load()
	stale := int64(s.cfg.StaleBatches)
	n := pl.NumEntries()
	announced := len(w.keys)

	// Filter: one generation-stamped dedup pass per window, then drop keys
	// the flush would already serve locally (placement-local) or that are
	// already staged and servable.
	sc.dedup.Reset(announced)
	fetch := sc.fetch[:0]
	for _, k := range w.keys {
		if k < 0 || k >= n {
			continue
		}
		if _, fresh := sc.dedup.Add(k); !fresh {
			continue
		}
		if int(pl.SourceOf(g, k)) == g {
			continue
		}
		if arena.Resident(k, now, stale, version) {
			continue
		}
		fetch = append(fetch, k)
	}
	sc.fetch = fetch
	if sc.span != nil {
		tFilter = s.tl.Now()
		tExtract = tFilter
	}

	simTime := 0.0
	if len(fetch) > 0 {
		// The prefetch extraction models the real interconnect cost of the
		// early move; it lands on the prefetch metrics/track, not on any
		// request's SimSeconds — that is the whole point of the overlap.
		sc.batch.Keys[g] = fetch
		res, err := s.sys.ExtractBatchWith(&sc.batch, sc.core)
		sc.batch.Keys[g] = nil
		if err != nil {
			s.met.prefetchErrors.Add(g, 1)
			return
		}
		simTime = res.Time
		if sc.span != nil {
			tExtract = s.tl.Now()
		}
		var rows []byte
		if s.functional {
			need := len(fetch) * s.entryBytes
			if cap(sc.rows) < need {
				sc.rows = make([]byte, need)
			}
			rows = sc.rows[:need]
			if err := s.sys.LookupWith(g, fetch, rows, sc.core); err != nil {
				s.met.prefetchErrors.Add(g, 1)
				return
			}
		}
		if err := arena.Commit(fetch, rows, version, now); err != nil {
			s.met.prefetchErrors.Add(g, 1)
			return
		}
	}

	m := s.met
	m.prefetchWindows.Add(g, 1)
	m.prefetchStagedKeys.Add(g, int64(len(fetch)))
	m.prefetchSimSeconds.Add(g, simTime)

	if s.fl != nil {
		// Prefetch workers run concurrently with GPU g's serving worker, so
		// they must not write its single-producer ring; staged windows are
		// off the critical path and ride the mutex-guarded control ring.
		e := flight.Event{Kind: flight.KindPrefetch, GPU: int32(g), UnixNanos: time.Now().UnixNano()}
		e.V[flight.PrefetchAnnouncedKeys] = float64(announced)
		e.V[flight.PrefetchFetchedKeys] = float64(len(fetch))
		e.V[flight.PrefetchSimSeconds] = simTime
		s.fl.RecordControl(&e)
	}

	if sc.span != nil {
		tEnd := s.tl.Now()
		tid := int32(g)
		root := timeline.Event{Name: "prefetch-window", Cat: "prefetch", Ph: timeline.PhSpan,
			PID: timeline.ProcPrefetch, TID: tid, Start: tStart, Dur: tEnd - tStart}
		root.AddArg("announced_keys", float64(announced))
		root.AddArg("fetched_keys", float64(len(fetch)))
		root.AddArg("sim_seconds", simTime)
		sc.span.Emit(&root)
		child := func(name string, start, end float64) {
			if end < start {
				end = start
			}
			ev := timeline.Event{Name: name, Cat: "prefetch", Ph: timeline.PhSpan,
				PID: timeline.ProcPrefetch, TID: tid, Start: start, Dur: end - start}
			sc.span.Emit(&ev)
		}
		child("filter", tStart, tFilter)
		child("extract", tFilter, tExtract)
		child("stage", tExtract, tEnd)
	}
}
