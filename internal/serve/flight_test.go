package serve

import (
	"sync"
	"testing"
	"time"

	"ugache/internal/core"
	"ugache/internal/flight"
	"ugache/internal/platform"
	"ugache/internal/timeline"
)

// TestServeFlightEvents drives a functional server with the flight recorder
// attached and checks the event stream: every flushed batch lands in the
// worker's ring with sane fields, queue samples ride along, and each batch
// event's (gpu, seq) pair resolves to the matching timeline span tree — the
// exemplar linkage diagnostic bundles rely on.
func TestServeFlightEvents(t *testing.T) {
	sys, _ := buildFunctional(t, 3000)
	fl := flight.NewRecorder(sys.P.N, 256)
	rec := timeline.NewRecorder(sys.P.N, 4096)
	srv, err := New(sys, Config{MaxWait: time.Millisecond, Flight: fl, Timeline: rec})
	if err != nil {
		t.Fatal(err)
	}
	keys := []int64{1, 7, 7, 2999, 42, 0}
	for i := 0; i < 4; i++ {
		for g := 0; g < 2; g++ {
			if _, err := srv.Lookup(g, keys); err != nil {
				t.Fatal(err)
			}
		}
	}
	srv.Close()

	events := fl.Snapshot()
	var batches, queues []flight.Event
	for _, e := range events {
		switch e.Kind {
		case flight.KindBatch:
			batches = append(batches, e)
		case flight.KindQueue:
			queues = append(queues, e)
		}
	}
	if len(batches) == 0 {
		t.Fatal("no batch events recorded")
	}
	if len(queues) == 0 {
		t.Fatal("no queue events recorded")
	}
	for _, e := range batches {
		if e.GPU < 0 || int(e.GPU) >= sys.P.N || e.Seq <= 0 || e.UnixNanos == 0 {
			t.Fatalf("batch event identity = %+v", e)
		}
		if e.V[flight.BatchLatencySeconds] <= 0 ||
			e.V[flight.BatchRequests] < 1 ||
			e.V[flight.BatchUniqueKeys] < 1 ||
			e.V[flight.BatchUniqueKeys] > float64(len(keys)) {
			t.Fatalf("batch event payload = %+v", e)
		}
		split := e.V[flight.BatchLocalSeconds] + e.V[flight.BatchRemoteSeconds] + e.V[flight.BatchHostSeconds]
		if split <= 0 || e.V[flight.BatchSimSeconds] <= 0 {
			t.Fatalf("batch event tier split = %+v", e)
		}
	}

	// Every batch event resolves into the timeline: a "batch" root span on
	// the same GPU track carrying a matching seq arg.
	for _, e := range batches {
		found := false
		for _, sp := range rec.Events() {
			if sp.PID != timeline.ProcServe || sp.Name != "batch" || sp.TID != e.GPU {
				continue
			}
			for i := int32(0); i < sp.NArgs; i++ {
				if sp.Args[i].Key == "seq" && int64(sp.Args[i].Val) == e.Seq {
					found = true
				}
			}
		}
		if !found {
			t.Fatalf("batch event gpu=%d seq=%d has no matching timeline span", e.GPU, e.Seq)
		}
	}

	ex, ok := fl.SlowestBatch(0)
	if !ok || ex.V[flight.BatchLatencySeconds] <= 0 {
		t.Fatalf("SlowestBatch = %+v ok=%v", ex, ok)
	}
}

// TestServeFlightConcurrent hammers lookups on every GPU while a reader
// drains snapshots — the -race proof that worker rings (single producer) and
// concurrent Snapshot readers coexist, mirroring the live /debug/flight
// endpoint scraping a serving process.
func TestServeFlightConcurrent(t *testing.T) {
	sys, _ := buildFunctional(t, 2000)
	fl := flight.NewRecorder(sys.P.N, 64)
	srv, err := New(sys, Config{MaxWait: time.Millisecond, Flight: fl})
	if err != nil {
		t.Fatal(err)
	}
	var lookups, reader sync.WaitGroup
	stop := make(chan struct{})
	reader.Add(1)
	go func() {
		defer reader.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, e := range fl.Snapshot() {
				if e.Kind == 0 || e.Kind > flight.KindPrefetch {
					t.Errorf("torn event kind %d", e.Kind)
					return
				}
			}
		}
	}()
	for g := 0; g < sys.P.N; g++ {
		lookups.Add(1)
		go func(g int) {
			defer lookups.Done()
			keys := []int64{int64(g), 5, 900}
			for i := 0; i < 50; i++ {
				if _, err := srv.Lookup(g, keys); err != nil {
					t.Errorf("gpu %d: %v", g, err)
					return
				}
			}
		}(g)
	}
	lookups.Wait()
	close(stop)
	reader.Wait()
	srv.Close()
	if fl.Recorded() == 0 {
		t.Fatal("no events recorded")
	}
}

// TestServeFlightAllocParity is the acceptance gate for the flight
// recorder's zero-allocation claim: the steady-state flush path allocates
// exactly as much with flight recording enabled as without it.
func TestServeFlightAllocParity(t *testing.T) {
	build := func(fl *flight.Recorder) *Server {
		sys, err := core.Build(core.Config{
			Platform:   platform.ServerA(),
			Hotness:    testHotness(3000, 1.1, 3),
			EntryBytes: 128,
			CacheRatio: 0.1,
		})
		if err != nil {
			t.Fatal(err)
		}
		srv, err := New(sys, Config{MaxBatchKeys: 1, MaxWait: time.Millisecond, Flight: fl})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(srv.Close)
		return srv
	}
	keys := []int64{1, 7, 7, 2999, 42, 0}
	measure := func(srv *Server) float64 {
		// Warm the path so lazy growth (scratch maps, rings) settles.
		for i := 0; i < 32; i++ {
			if _, err := srv.Lookup(0, keys); err != nil {
				t.Fatal(err)
			}
		}
		return testing.AllocsPerRun(200, func() {
			if _, err := srv.Lookup(0, keys); err != nil {
				t.Fatal(err)
			}
		})
	}
	off := measure(build(nil))
	on := measure(build(flight.NewRecorder(2, 1024)))
	if on > off {
		t.Fatalf("flight recording adds allocations to the flush path: %.1f with, %.1f without", on, off)
	}
}
