package serve

import (
	"testing"
	"time"

	"ugache/internal/cache"
	"ugache/internal/core"
	"ugache/internal/platform"
	"ugache/internal/telemetry"
)

func sampleValue(t *testing.T, reg *telemetry.Registry, name string) float64 {
	t.Helper()
	for _, s := range reg.Samples() {
		if s.Name == name {
			return s.Value
		}
	}
	t.Fatalf("metric %s not registered", name)
	return 0
}

// TestServeTelemetry drives the instrumented engine end to end and checks
// the whole surface: coalescing counters, fill reasons, the latency
// histogram, the per-tier extraction split, and the trace ring.
func TestServeTelemetry(t *testing.T) {
	reg := telemetry.NewRegistry(4)
	sys, err := core.Build(core.Config{
		Platform:   platform.ServerA(),
		Hotness:    testHotness(2000, 1.1, 3),
		EntryBytes: 64,
		CacheRatio: 0.1,
		Telemetry:  reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	sampler := cache.NewHotnessSampler(2000, 1)
	srv, err := New(sys, Config{
		MaxBatchKeys: 1 << 20,
		MaxWait:      time.Millisecond,
		Telemetry:    reg,
		TraceDepth:   32,
		Sampler:      sampler,
	})
	if err != nil {
		t.Fatal(err)
	}

	const reqs = 24
	chans := make([]<-chan Result, reqs)
	for i := 0; i < reqs; i++ {
		chans[i] = srv.Handle(i%sys.P.N, []int64{int64(i), int64(i + 100), int64(i % 3)})
	}
	for i, ch := range chans {
		if res := <-ch; res.Err != nil {
			t.Fatalf("request %d: %v", i, res.Err)
		}
	}
	srv.Close()

	if srv.Metrics() != reg {
		t.Fatal("Metrics() did not return the shared registry")
	}
	if got := sampleValue(t, reg, "serve_requests_total"); got != reqs {
		t.Fatalf("serve_requests_total %g, want %d", got, reqs)
	}
	if got := sampleValue(t, reg, "serve_requested_keys_total"); got != 3*reqs {
		t.Fatalf("serve_requested_keys_total %g, want %d", got, 3*reqs)
	}
	uniq := sampleValue(t, reg, "serve_unique_keys_total")
	if uniq <= 0 || uniq > 3*reqs {
		t.Fatalf("serve_unique_keys_total %g out of range", uniq)
	}
	batches := sampleValue(t, reg, "serve_batches_total")
	if batches <= 0 || batches >= reqs {
		t.Fatalf("serve_batches_total %g: no coalescing", batches)
	}
	fills := sampleValue(t, reg, "serve_batch_fill_full_total") +
		sampleValue(t, reg, "serve_batch_fill_timer_total") +
		sampleValue(t, reg, "serve_batch_fill_drain_total")
	if fills != batches {
		t.Fatalf("fill reasons sum %g, batches %g", fills, batches)
	}
	if got := sampleValue(t, reg, "serve_request_latency_seconds_count"); got != reqs {
		t.Fatalf("latency observations %g, want %d", got, reqs)
	}
	if p99 := sampleValue(t, reg, "serve_request_latency_seconds_p99"); p99 <= 0 {
		t.Fatalf("latency p99 %g", p99)
	}
	if got := sampleValue(t, reg, "serve_sim_seconds_total"); got <= 0 {
		t.Fatalf("serve_sim_seconds_total %g", got)
	}

	// Fill-source split: with lookahead off every unique key is a demand
	// miss and no key is a prefetch hit; the two always sum to the unique
	// total.
	hitFill := sampleValue(t, reg, "serve_fill_prefetch_hit")
	missFill := sampleValue(t, reg, "serve_fill_demand_miss")
	if hitFill != 0 {
		t.Fatalf("serve_fill_prefetch_hit %g with lookahead disabled", hitFill)
	}
	if missFill != uniq {
		t.Fatalf("serve_fill_demand_miss %g, want %g", missFill, uniq)
	}

	// Core-level split: every unique key landed in exactly one tier.
	tiers := sampleValue(t, reg, "core_hit_local_keys_total") +
		sampleValue(t, reg, "core_hit_remote_keys_total") +
		sampleValue(t, reg, "core_hit_host_keys_total")
	if tiers != uniq {
		t.Fatalf("tier keys %g, unique keys %g", tiers, uniq)
	}
	if got := sampleValue(t, reg, "core_extract_batches_total"); got != batches {
		t.Fatalf("core_extract_batches_total %g, serve batches %g", got, batches)
	}

	// Trace ring: records exist and are internally consistent.
	ring := srv.Trace()
	if ring == nil {
		t.Fatal("trace ring disabled at default config")
	}
	traces := ring.Snapshot(nil)
	if len(traces) == 0 {
		t.Fatal("no batch traces recorded")
	}
	var traceReqs int
	for _, tr := range traces {
		traceReqs += tr.Requests
		if tr.UniqueKeys <= 0 || tr.RequestedKeys < tr.UniqueKeys {
			t.Fatalf("inconsistent trace %+v", tr)
		}
		gotBytes := tr.LocalBytes + tr.RemoteBytes + tr.HostBytes
		if want := float64(tr.UniqueKeys * 64); gotBytes != want {
			t.Fatalf("trace tier bytes %g, want %g", gotBytes, want)
		}
		if tr.SimSeconds <= 0 {
			t.Fatalf("trace without sim time: %+v", tr)
		}
	}
	if traceReqs != reqs {
		t.Fatalf("traced requests %d, want %d (TraceEvery default must record every batch)", traceReqs, reqs)
	}

	// Sampler wiring: every flushed batch was observed, shard-per-worker.
	if sampler.Batches() != int(batches) {
		t.Fatalf("sampler observed %d batches, want %g", sampler.Batches(), batches)
	}
	if _, err := sampler.Hotness(); err != nil {
		t.Fatal(err)
	}
}

// TestServeTelemetryPrefetchFillSplit drives a lookahead-enabled server
// with a perfectly announced stream and checks the fill-source counters:
// prefetch hits appear, and hits + demand misses always equal the unique
// total.
func TestServeTelemetryPrefetchFillSplit(t *testing.T) {
	reg := telemetry.NewRegistry(4)
	sys, err := core.Build(core.Config{
		Platform:   platform.ServerA(),
		Hotness:    testHotness(2000, 1.1, 3),
		EntryBytes: 64,
		CacheRatio: 0.1,
		Telemetry:  reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(sys, Config{
		MaxBatchKeys: 1 << 20,
		MaxWait:      time.Millisecond,
		Telemetry:    reg,
		Lookahead:    2,
	})
	if err != nil {
		t.Fatal(err)
	}
	keys := []int64{5, 17, 101, 999, 1500}
	if !srv.Prefetch(0, keys) {
		t.Fatal("prefetch window rejected")
	}
	srv.WaitPrefetch(0)
	if _, err := srv.Lookup(0, keys); err != nil {
		t.Fatal(err)
	}
	srv.Close()

	uniq := sampleValue(t, reg, "serve_unique_keys_total")
	hitFill := sampleValue(t, reg, "serve_fill_prefetch_hit")
	missFill := sampleValue(t, reg, "serve_fill_demand_miss")
	if hitFill+missFill != uniq {
		t.Fatalf("fill split %g + %g != unique %g", hitFill, missFill, uniq)
	}
	if hitFill == 0 {
		t.Fatal("no prefetch hits despite a fully announced batch")
	}
	if got := sampleValue(t, reg, "serve_prefetch_windows_total"); got != 1 {
		t.Fatalf("serve_prefetch_windows_total %g, want 1", got)
	}
	if got := sampleValue(t, reg, "serve_prefetch_staged_keys_total"); got != hitFill {
		t.Fatalf("staged %g keys but %g hit — a perfectly announced stream should consume all of them", got, hitFill)
	}
}

// TestServeTelemetryTraceSampling checks TraceEvery thins the ring.
func TestServeTelemetryTraceSampling(t *testing.T) {
	sys, err := core.Build(core.Config{
		Platform:   platform.ServerA(),
		Hotness:    testHotness(500, 1.1, 3),
		EntryBytes: 32,
		CacheRatio: 0.1,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(sys, Config{MaxBatchKeys: 1, MaxWait: time.Millisecond, TraceEvery: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 16; i++ {
		if _, err := srv.Lookup(0, []int64{int64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	srv.Close()
	// 16 single-request batches on worker 0, every 4th traced.
	if n := srv.Trace().Len(); n != 4 {
		t.Fatalf("trace ring holds %d records, want 4", n)
	}
	st := srv.Stats()
	if st.Requests != 16 || st.Batches != 16 {
		t.Fatalf("stats %+v", st)
	}
}
