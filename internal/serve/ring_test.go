package serve

import (
	"sync"
	"testing"
)

func TestRingCapacityRounding(t *testing.T) {
	cases := []struct{ in, want int }{
		{-5, 2}, {0, 2}, {1, 2}, {2, 2}, {3, 4}, {4, 4}, {5, 8}, {8, 8}, {200, 256},
	}
	for _, c := range cases {
		if got := newRing(c.in).capacity(); got != c.want {
			t.Errorf("newRing(%d).capacity() = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestRingFIFOAndFull(t *testing.T) {
	r := newRing(4)
	reqs := make([]*request, 4)
	for i := range reqs {
		reqs[i] = &request{keys: []int64{int64(i)}}
		if !r.push(reqs[i]) {
			t.Fatalf("push %d failed on non-full ring", i)
		}
	}
	if r.push(&request{}) {
		t.Fatal("push succeeded on a full ring")
	}
	if d := r.depth(); d != 4 {
		t.Fatalf("depth = %d, want 4", d)
	}
	for i := range reqs {
		got := r.pop()
		if got != reqs[i] {
			t.Fatalf("pop %d returned wrong request", i)
		}
	}
	if r.pop() != nil {
		t.Fatal("pop on empty ring returned a request")
	}
	if d := r.depth(); d != 0 {
		t.Fatalf("depth after drain = %d, want 0", d)
	}
	// A second lap must work (sequence stamps wrap per lap, not per uint64).
	for i := range reqs {
		if !r.push(reqs[i]) {
			t.Fatalf("second-lap push %d failed", i)
		}
	}
	for i := range reqs {
		if r.pop() != reqs[i] {
			t.Fatalf("second-lap pop %d returned wrong request", i)
		}
	}
}

// TestRingConcurrentProducers hammers the ring from many producers with one
// consumer and requires every pushed request to arrive exactly once. Run
// with -race.
func TestRingConcurrentProducers(t *testing.T) {
	const producers = 8
	const perProducer = 2000
	r := newRing(64)
	var pushed [producers]int
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				if r.push(&request{keys: []int64{int64(p*perProducer + i)}}) {
					pushed[p]++
				}
			}
		}(p)
	}
	seen := make(map[int64]bool)
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	for {
		req := r.pop()
		if req == nil {
			select {
			case <-done:
				if req = r.pop(); req == nil {
					total := 0
					for _, n := range pushed {
						total += n
					}
					if len(seen) != total {
						t.Errorf("consumed %d unique requests, producers pushed %d", len(seen), total)
					}
					return
				}
			default:
				continue
			}
		}
		k := req.keys[0]
		if seen[k] {
			t.Fatalf("request %d delivered twice", k)
		}
		seen[k] = true
	}
}

func TestGPUQueuePriority(t *testing.T) {
	q := newGPUQueue(8, 8)
	bg := &request{keys: []int64{1}, class: ClassBackground}
	inf := &request{keys: []int64{2}, class: ClassInference}
	if !q.push(bg) || !q.push(inf) {
		t.Fatal("push failed on empty queue")
	}
	if got := q.pop(); got != inf {
		t.Fatal("pop did not prefer the inference ring")
	}
	if got := q.pop(); got != bg {
		t.Fatal("background request lost")
	}
	if q.pop() != nil {
		t.Fatal("pop on empty queue returned a request")
	}
}

func TestGPUQueueClassRouting(t *testing.T) {
	// Background rides the smaller low ring: with it full, background sheds
	// while inference still admits.
	q := newGPUQueue(16, 2)
	for i := 0; i < 2; i++ {
		if !q.push(&request{class: ClassBackground}) {
			t.Fatalf("background push %d failed below capacity", i)
		}
	}
	if q.push(&request{class: ClassBackground}) {
		t.Fatal("background push succeeded past the low ring's capacity")
	}
	if !q.push(&request{class: ClassInference}) {
		t.Fatal("inference push shed while only the background ring was full")
	}
}

func TestClassString(t *testing.T) {
	if ClassInference.String() != "inference" || ClassBackground.String() != "background" {
		t.Fatalf("Class.String: %q / %q", ClassInference.String(), ClassBackground.String())
	}
}

func TestPendingGate(t *testing.T) {
	g := newPendingGate()
	g.wait() // zero count: returns immediately
	g.add(3)
	done := make(chan struct{})
	go func() { g.wait(); close(done) }()
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() { defer wg.Done(); g.add(-1) }()
	}
	wg.Wait()
	<-done
}
