package serve

import (
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"ugache/internal/core"
	"ugache/internal/platform"
)

// TestCloseHandleRace is the regression test for the lost-request shutdown
// race: before the two-phase Close, a Handle that had passed the closed
// check could win the enqueue select after the worker's final drain and
// strand its caller forever. Hammer Handle from many goroutines while Close
// runs concurrently, and require that every issued request receives a
// Result — success, ErrClosed, or (with the tiny queue here saturated)
// ErrOverload — within a bounded wait. Run with -race.
func TestCloseHandleRace(t *testing.T) {
	sys, err := core.Build(core.Config{
		Platform:   platform.ServerA(),
		Hotness:    testHotness(500, 1.1, 5),
		EntryBytes: 32,
		CacheRatio: 0.1,
	})
	if err != nil {
		t.Fatal(err)
	}

	const rounds = 30
	const clients = 8
	const perClient = 40
	for round := 0; round < rounds; round++ {
		srv, err := New(sys, Config{
			MaxBatchKeys: 16,
			MaxWait:      50 * time.Microsecond,
			QueueDepth:   2, // tiny queue: enqueues block and straddle Close
			TraceDepth:   -1,
		})
		if err != nil {
			t.Fatal(err)
		}

		var chans [clients * perClient]<-chan Result
		var wg sync.WaitGroup
		start := make(chan struct{})
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				<-start
				for i := 0; i < perClient; i++ {
					chans[c*perClient+i] = srv.Handle((c+i)%sys.P.N, []int64{int64(i % 500), int64((i * 7) % 500)})
				}
			}(c)
		}
		closeDone := make(chan struct{})
		go func() {
			defer close(closeDone)
			<-start
			// Land Close in the middle of the Handle storm.
			time.Sleep(time.Duration(rand.Intn(300)) * time.Microsecond)
			srv.Close()
		}()
		close(start)
		wg.Wait()
		<-closeDone

		deadline := time.After(10 * time.Second)
		for i, ch := range chans {
			select {
			case res := <-ch:
				if res.Err != nil && !errors.Is(res.Err, ErrClosed) && !errors.Is(res.Err, ErrOverload) {
					t.Fatalf("round %d request %d: unexpected error %v", round, i, res.Err)
				}
			case <-deadline:
				t.Fatalf("round %d: request %d stranded after Close (lost-request race)", round, i)
			}
		}
	}
}

// TestCloseIdempotentConcurrent runs several Close calls in parallel with
// a trickle of Handles; nothing may deadlock or panic, and the server must
// reject requests afterwards.
func TestCloseIdempotentConcurrent(t *testing.T) {
	sys, err := core.Build(core.Config{
		Platform:   platform.ServerA(),
		Hotness:    testHotness(200, 1.1, 5),
		EntryBytes: 32,
		CacheRatio: 0.2,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(sys, Config{MaxWait: 100 * time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() { defer wg.Done(); srv.Close() }()
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-srv.Handle(i%sys.P.N, []int64{1, 2, 3})
		}(i)
	}
	wg.Wait()
	if res := <-srv.Handle(0, []int64{1}); !errors.Is(res.Err, ErrClosed) {
		t.Fatalf("closed server accepted a request: %+v", res)
	}
}
