package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestDistinctSeeds(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("seeds 1 and 2 collided %d/100 times", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	c1 := parent.Split("graph")
	c2 := parent.Split("workload")
	c1b := New(7).Split("graph")
	for i := 0; i < 100; i++ {
		if c1.Uint64() != c1b.Uint64() {
			t.Fatalf("Split not deterministic at %d", i)
		}
	}
	// Different labels must differ.
	d1, d2 := New(7).Split("graph"), New(7).Split("workload")
	diff := false
	for i := 0; i < 10; i++ {
		if d1.Uint64() != d2.Uint64() {
			diff = true
		}
	}
	if !diff {
		t.Fatal("Split streams with different labels are identical")
	}
	_ = c2
}

func TestSplitDoesNotAdvanceParent(t *testing.T) {
	a := New(9)
	b := New(9)
	_ = a.Split("x")
	for i := 0; i < 16; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("Split advanced the parent stream")
		}
	}
}

func TestUint64nBounds(t *testing.T) {
	r := New(3)
	f := func(n uint64) bool {
		if n == 0 {
			n = 1
		}
		v := r.Uint64n(n)
		return v < n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUint64nUniform(t *testing.T) {
	r := New(11)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Uint64n(n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d: got %d, want ~%.0f", i, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(5)
	sum := 0.0
	for i := 0; i < 100000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
		sum += v
	}
	mean := sum / 100000
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean %v, want ~0.5", mean)
	}
}

func TestExpMean(t *testing.T) {
	r := New(13)
	sum := 0.0
	const draws = 200000
	for i := 0; i < draws; i++ {
		sum += r.Exp()
	}
	mean := sum / draws
	if math.Abs(mean-1.0) > 0.02 {
		t.Fatalf("Exp mean %v, want ~1", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(17)
	for _, n := range []int{0, 1, 2, 10, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has len %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += r.Uint64()
	}
	_ = sink
}
