// Package rng provides deterministic pseudo-random number generation for the
// whole repository. Every experiment in this codebase must be reproducible
// bit-for-bit across runs, so nothing may use math/rand's global state or wall
// clocks; instead components derive independent, seeded streams from this
// package.
//
// The generator is xoshiro256**, seeded through splitmix64 as recommended by
// its authors. Independent sub-streams are derived with Split, which hashes a
// label into the seed so that adding a new consumer never perturbs the
// sequences seen by existing ones.
package rng

import (
	"math"
	"math/bits"
)

// splitmix64 advances the given state and returns the next 64-bit output.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Rand is a deterministic xoshiro256** generator. The zero value is not
// usable; construct with New or Split.
type Rand struct {
	s [4]uint64
}

// New returns a generator seeded from the given seed. Distinct seeds yield
// statistically independent sequences.
func New(seed uint64) *Rand {
	var r Rand
	sm := seed
	for i := range r.s {
		r.s[i] = splitmix64(&sm)
	}
	// xoshiro must not start from the all-zero state.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	return &r
}

// Split derives an independent generator from r and a label. The parent
// stream is not advanced, so the derived stream depends only on the parent's
// seed and the label.
func (r *Rand) Split(label string) *Rand {
	h := uint64(1469598103934665603) // FNV-64 offset basis
	for i := 0; i < len(label); i++ {
		h ^= uint64(label[i])
		h *= 1099511628211
	}
	// Mix the parent's state without consuming from it.
	h ^= bits.RotateLeft64(r.s[0], 17) ^ bits.RotateLeft64(r.s[2], 43)
	return New(h)
}

// Uint64 returns the next value in the sequence.
func (r *Rand) Uint64() uint64 {
	s := &r.s
	result := bits.RotateLeft64(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = bits.RotateLeft64(s[3], 45)
	return result
}

// Uint64n returns a uniform value in [0, n). It panics if n == 0.
func (r *Rand) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n with n == 0")
	}
	// Lemire's multiply-shift rejection method.
	hi, lo := bits.Mul64(r.Uint64(), n)
	if lo < n {
		thresh := -n % n
		for lo < thresh {
			hi, lo = bits.Mul64(r.Uint64(), n)
		}
	}
	return hi
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with n <= 0")
	}
	return int(r.Uint64n(uint64(n)))
}

// Int63 returns a non-negative int64.
func (r *Rand) Int63() int64 {
	return int64(r.Uint64() >> 1)
}

// Float64 returns a uniform value in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Exp returns an exponentially distributed value with rate 1, via inversion.
func (r *Rand) Exp() float64 {
	u := r.Float64()
	// Guard against log(0).
	for u == 0 {
		u = r.Float64()
	}
	return -math.Log(u)
}

// Perm returns a random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.ShuffleInts(p)
	return p
}

// ShuffleInts shuffles s in place (Fisher–Yates).
func (r *Rand) ShuffleInts(s []int) {
	for i := len(s) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		s[i], s[j] = s[j], s[i]
	}
}

// Shuffle shuffles n elements using the provided swap function.
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
