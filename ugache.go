// Package ugache is a Go reproduction of UGache (SOSP '23): a unified
// multi-GPU embedding cache for embedding-based deep learning, built on a
// deterministic simulation of multi-GPU platforms (V100/A100 servers with
// NVLink, NVSwitch and PCIe).
//
// The package exposes UGache as an embedding layer, mirroring the paper's
// integration surface (§7.1): construct a System from a platform, per-entry
// hotness statistics and a cache budget; the system solves the cache policy
// (§6), fills the simulated GPU caches, and serves batched extractions
// through the factored extraction mechanism (§5). Lookup returns real
// embedding bytes when a host store is attached; ExtractBatch returns the
// simulated extraction timing used throughout the paper's evaluation.
//
// Quick start:
//
//	p := ugache.ServerC()                             // 8×A100 + NVSwitch
//	table, _ := ugache.NewTable("emb", 1_000_000, 128, ugache.Float32, 42)
//	hot, _ := ugache.ProfileBatches(table.NumEntries, batches)
//	sys, _ := ugache.New(ugache.Config{
//		Platform:   p,
//		Hotness:    hot,
//		EntryBytes: table.EntryBytes(),
//		CacheRatio: 0.10,
//		Source:     table,
//	})
//	out := make([]byte, len(keys)*table.EntryBytes())
//	_ = sys.Lookup(0, keys, out)                      // real bytes
//	res, _ := sys.ExtractBatch(batch)                 // simulated timing
//
// The internal packages contain the full system: the fluid-flow bandwidth
// simulator (internal/sim), platform models (internal/platform), the policy
// solver with its LP/MILP machinery (internal/solver, internal/lp,
// internal/milp), extraction mechanisms (internal/extract), cache state and
// refresh (internal/cache), workload generators (internal/workload,
// internal/graph), the paper's baseline systems (internal/baselines), the
// GNN/DLR applications (internal/app) and the benchmark harness that
// regenerates every table and figure (internal/bench).
package ugache

import (
	"io"
	"net/http"

	"ugache/internal/cache"
	"ugache/internal/core"
	"ugache/internal/emb"
	"ugache/internal/extract"
	"ugache/internal/platform"
	"ugache/internal/rng"
	"ugache/internal/serve"
	"ugache/internal/solver"
	"ugache/internal/telemetry"
	"ugache/internal/timeline"
	"ugache/internal/workload"
)

// Platform is a simulated multi-GPU server.
type Platform = platform.Platform

// SourceID identifies a source location (GPU index, or Platform.Host()).
type SourceID = platform.SourceID

// PlatformConfig describes a custom platform for NewPlatform.
type PlatformConfig = platform.Config

// GPUModel holds per-device constants.
type GPUModel = platform.GPUModel

// Stock GPU models.
var (
	V100x16 = platform.V100x16
	V100x32 = platform.V100x32
	A100x80 = platform.A100x80
)

// ServerA returns the paper's 4×V100 hard-wired testbed.
func ServerA() *Platform { return platform.ServerA() }

// ServerB returns the paper's 8×V100 DGX-1 testbed (unconnected pairs).
func ServerB() *Platform { return platform.ServerB() }

// ServerC returns the paper's 8×A100 NVSwitch testbed.
func ServerC() *Platform { return platform.ServerC() }

// NewPlatform builds a custom platform.
func NewPlatform(cfg PlatformConfig) (*Platform, error) { return platform.New(cfg) }

// Hotness is the per-entry expected accesses per iteration (§6.1).
type Hotness = workload.Hotness

// ProfileBatches measures hotness from recorded key batches (presence
// counting with Good–Turing tail smoothing).
func ProfileBatches(numEntries int64, batches [][]int64) (Hotness, error) {
	return workload.ProfileBatches(numEntries, batches)
}

// DType is an embedding element type.
type DType = emb.DType

// Element types.
const (
	Float32 = emb.Float32
	Float16 = emb.Float16
)

// Table is a host-resident embedding table.
type Table = emb.Table

// NewTable creates a procedural (generate-on-read) table.
func NewTable(name string, n int64, dim int, dtype DType, seed uint64) (*Table, error) {
	return emb.New(name, n, dim, dtype, seed)
}

// NewMaterializedTable creates a table with real backing bytes.
func NewMaterializedTable(name string, n int64, dim int, dtype DType, seed uint64) (*Table, error) {
	return emb.NewMaterialized(name, n, dim, dtype, seed)
}

// MultiTable flattens several tables into one key space (DLR-style).
type MultiTable = emb.MultiTable

// NewMultiTable builds the flattened view.
func NewMultiTable(tables []*Table) (*MultiTable, error) { return emb.NewMultiTable(tables) }

// Policy is a cache-policy algorithm (§6).
type Policy = solver.Policy

// Stock policies.
var (
	// PolicyUGache is the paper's solver (default).
	PolicyUGache Policy = solver.UGache{}
	// PolicyReplication is the HPS/GNNLab-style per-GPU cache.
	PolicyReplication Policy = solver.Replication{}
	// PolicyPartition is the WholeGraph/SOK-style partition cache.
	PolicyPartition Policy = solver.Partition{}
	// PolicyCliquePartition is Quiver's clique partition.
	PolicyCliquePartition Policy = solver.CliquePartition{}
	// PolicyOptimal is the exact LP reference (Fig. 16).
	PolicyOptimal Policy = solver.OptimalLP{}
)

// PolicyByName resolves a policy by its registry name.
func PolicyByName(name string) (Policy, error) { return solver.PolicyByName(name) }

// Placement is a solved cache policy. Placements serialize with
// Placement.Save and LoadPlacement, so a deployment can solve once and
// reuse the result across restarts.
type Placement = solver.Placement

// LoadPlacement reads a placement written by Placement.Save.
func LoadPlacement(r io.Reader) (*Placement, error) { return solver.LoadPlacement(r) }

// Mechanism selects the extraction scheme (§5).
type Mechanism = extract.Mechanism

// Extraction mechanisms.
const (
	Factored     = extract.Factored
	PeerRandom   = extract.PeerRandom
	MessageBased = extract.MessageBased
)

// Batch is one iteration's unique keys per destination GPU.
type Batch = extract.Batch

// ExtractResult is one simulated extraction's timing.
type ExtractResult = extract.Result

// Config describes a UGache instance; see core.Config for field docs.
type Config = core.Config

// System is a built UGache instance: the embedding layer of §4.
type System = core.System

// New solves the cache policy and fills the caches.
func New(cfg Config) (*System, error) { return core.Build(cfg) }

// Scratch holds the reusable buffers of the per-iteration hot path. Pass
// one to System.ExtractBatchWith / System.LookupWith from a single
// goroutine to make steady-state lookups and extractions allocation-free;
// see the core package for the aliasing contract.
type Scratch = core.Scratch

// NewScratch returns an empty Scratch; buffers grow on first use.
func NewScratch() *Scratch { return core.NewScratch() }

// RefreshConfig tunes the §7.2 background refresh.
type RefreshConfig = cache.RefreshConfig

// RefreshReport summarizes one refresh (Fig. 17).
type RefreshReport = cache.RefreshReport

// DefaultRefreshConfig mirrors the paper's refresh behaviour.
func DefaultRefreshConfig() RefreshConfig { return cache.DefaultRefreshConfig() }

// HotnessSampler records foreground batches for refresh decisions (§7.2).
type HotnessSampler = cache.HotnessSampler

// NewHotnessSampler records every `every`-th observed batch.
func NewHotnessSampler(numEntries int64, every int) *HotnessSampler {
	return cache.NewHotnessSampler(numEntries, every)
}

// ServeConfig tunes the serving engine's request coalescer (max-batch /
// max-wait deadlines, queue depth).
type ServeConfig = serve.Config

// Server is the concurrent serving engine: one worker per GPU coalesces
// many small lookup requests into iteration-sized extraction batches.
// Lookups run concurrently with background Refresh calls on the system.
type Server = serve.Server

// ServeResult is one served request's outcome: its rows (functional mode)
// plus the simulated extraction cost of the coalesced batch it rode in.
type ServeResult = serve.Result

// ServeStats are the engine's cumulative counters.
type ServeStats = serve.Stats

// ServeClass prioritizes admission: inference requests outrank background
// work, which rides a smaller queue and is shed first under pressure.
type ServeClass = serve.Class

const (
	ClassInference  = serve.ClassInference
	ClassBackground = serve.ClassBackground
)

// Admission outcomes (DESIGN.md §6.7): a request against a full bounded
// queue is shed with ErrOverload (immediately, or after ServeConfig's
// AdmitWait bound); requests racing shutdown observe ErrClosed.
var (
	ErrOverload = serve.ErrOverload
	ErrClosed   = serve.ErrClosed
)

// Serve starts the serving engine on a built system. Close the returned
// server to stop its workers.
func Serve(sys *System, cfg ServeConfig) (*Server, error) { return serve.New(sys, cfg) }

// TelemetryRegistry collects counters, gauges and latency histograms from
// the core, cache and serve layers (DESIGN.md §6.2). Share one registry
// across Config.Telemetry and ServeConfig.Telemetry to get a unified
// /metrics surface.
type TelemetryRegistry = telemetry.Registry

// NewTelemetryRegistry creates a registry with the given number of
// lock-free update shards (use the platform's GPU count for serving).
func NewTelemetryRegistry(shards int) *TelemetryRegistry { return telemetry.NewRegistry(shards) }

// BatchTrace is one coalesced batch's trace record (Server.Trace).
type BatchTrace = telemetry.BatchTrace

// TraceRing is the last-N ring of batch traces kept by a Server.
type TraceRing = telemetry.TraceRing

// TelemetryHandler serves /metrics (Prometheus text format) and
// /debug/trace (JSON) for a registry and an optional trace ring.
func TelemetryHandler(reg *TelemetryRegistry, ring *TraceRing) http.Handler {
	return telemetry.Handler(reg, ring)
}

// TelemetryHandlerConfig selects the endpoints of NewTelemetryHandler:
// /metrics, /debug/trace, /debug/timeline, /healthz and /readyz.
type TelemetryHandlerConfig = telemetry.HandlerConfig

// NewTelemetryHandler serves the full observability endpoint set.
func NewTelemetryHandler(cfg TelemetryHandlerConfig) http.Handler {
	return telemetry.NewHandler(cfg)
}

// Health is the liveness/readiness state behind /healthz and /readyz: flip
// SetReady(true) once the first cache build commits, SetReady(false) before
// draining a Server.
type Health = telemetry.Health

// NewHealth returns a not-ready Health.
func NewHealth() *Health { return telemetry.NewHealth() }

// TimelineRecorder records span-based traces (serve batches, fluid-sim link
// utilization, refresh/solver steps) and exports Chrome trace-event JSON
// loadable in Perfetto or chrome://tracing (DESIGN.md §6.3). Share one
// recorder across Config.Timeline and ServeConfig.Timeline.
type TimelineRecorder = timeline.Recorder

// NewTimelineRecorder creates a recorder with one event ring per writer
// shard (use the platform's GPU count for serving; depth <= 0 picks the
// default ring depth).
func NewTimelineRecorder(shards, depth int) *TimelineRecorder {
	return timeline.NewRecorder(shards, depth)
}

// ValidateTimeline parses a Chrome trace-event JSON stream and checks the
// invariants the exporter guarantees; it backs `ugache-trace
// -check-timeline` and the golden tests.
func ValidateTimeline(r io.Reader) (*TimelineValidation, error) { return timeline.Validate(r) }

// TimelineValidation summarizes a validated Chrome trace file.
type TimelineValidation = timeline.ValidationReport

// Rand is the repository's deterministic random generator.
type Rand = rng.Rand

// NewRand creates a deterministic generator from a seed.
func NewRand(seed uint64) *Rand { return rng.New(seed) }

// Zipf draws skewed keys; the synthetic workloads of §8.1.
type Zipf = workload.Zipf

// NewZipf creates a bounded Zipf sampler.
func NewZipf(n int64, alpha float64) (*Zipf, error) { return workload.NewZipf(n, alpha) }

// UniqueKeys deduplicates a key batch in first-seen order (the extractor
// operates on unique keys).
func UniqueKeys(keys []int64, scratch map[int64]struct{}) []int64 {
	return workload.Unique(keys, scratch)
}
