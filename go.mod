module ugache

go 1.22
