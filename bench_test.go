package ugache_test

import (
	"testing"

	"ugache/internal/bench"
)

// benchOptions keeps the testing.B benchmarks fast: tiny dataset scale and
// the trimmed Quick configuration matrix. The full-scale regeneration of
// every table and figure is cmd/ugache-bench (see EXPERIMENTS.md).
func benchOptions() bench.Options {
	return bench.Options{Scale: 0.04, Iters: 2, Seed: 42, Quick: true}
}

func benchExperiment(b *testing.B, name string) {
	b.Helper()
	opt := benchOptions()
	for i := 0; i < b.N; i++ {
		// Reset memoization so every iteration exercises the full pipeline
		// (dataset generation, profiling, solving, simulation).
		bench.ResetCaches()
		if _, err := bench.Run(name, opt); err != nil {
			b.Fatal(err)
		}
	}
}

// One benchmark per paper table/figure (see DESIGN.md §4 for the index).

func BenchmarkTable1(b *testing.B)   { benchExperiment(b, "table1") }
func BenchmarkTable3(b *testing.B)   { benchExperiment(b, "table3") }
func BenchmarkFigure2(b *testing.B)  { benchExperiment(b, "fig2") }
func BenchmarkFigure9(b *testing.B)  { benchExperiment(b, "fig9") }
func BenchmarkFigure4(b *testing.B)  { benchExperiment(b, "fig4") }
func BenchmarkFigure6(b *testing.B)  { benchExperiment(b, "fig6") }
func BenchmarkFigure10(b *testing.B) { benchExperiment(b, "fig10") }
func BenchmarkFigure11(b *testing.B) { benchExperiment(b, "fig11") }
func BenchmarkFigure12(b *testing.B) { benchExperiment(b, "fig12") }
func BenchmarkFigure13(b *testing.B) { benchExperiment(b, "fig13") }
func BenchmarkFigure14(b *testing.B) { benchExperiment(b, "fig14") }
func BenchmarkFigure15(b *testing.B) { benchExperiment(b, "fig15") }
func BenchmarkFigure16(b *testing.B) { benchExperiment(b, "fig16") }
func BenchmarkFigure17(b *testing.B) { benchExperiment(b, "fig17") }
func BenchmarkSummary(b *testing.B)  { benchExperiment(b, "summary") }

// Design-choice ablations (DESIGN.md §5).

func BenchmarkAblateBlocks(b *testing.B)     { benchExperiment(b, "ablate-blocks") }
func BenchmarkAblatePolicies(b *testing.B)   { benchExperiment(b, "ablate-policies") }
func BenchmarkAblateDedication(b *testing.B) { benchExperiment(b, "ablate-dedication") }
func BenchmarkAblatePadding(b *testing.B)    { benchExperiment(b, "ablate-padding") }
func BenchmarkAblateHotness(b *testing.B)    { benchExperiment(b, "ablate-hotness") }
func BenchmarkAblateDispatch(b *testing.B)   { benchExperiment(b, "ablate-dispatch") }
