package ugache_test

import (
	"bytes"
	"testing"

	"ugache"
	"ugache/internal/rng"
)

// TestFacadeEndToEnd exercises the public API the way the package doc
// advertises: profile hotness, build a system, look up real bytes, run a
// simulated extraction, and refresh.
func TestFacadeEndToEnd(t *testing.T) {
	p := ugache.ServerA()
	table, err := ugache.NewMaterializedTable("emb", 5000, 16, ugache.Float32, 7)
	if err != nil {
		t.Fatal(err)
	}
	z, err := ugache.NewZipf(table.NumEntries, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(3)
	genBatch := func() []int64 {
		keys := make([]int64, 4000)
		for i := range keys {
			keys[i] = z.Sample(r)
		}
		return ugache.UniqueKeys(keys, nil)
	}
	var batches [][]int64
	for i := 0; i < 32; i++ {
		batches = append(batches, genBatch())
	}
	hot, err := ugache.ProfileBatches(table.NumEntries, batches)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := ugache.New(ugache.Config{
		Platform:   p,
		Hotness:    hot,
		EntryBytes: table.EntryBytes(),
		CacheRatio: 0.1,
		Source:     table,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Functional lookup matches the host table.
	keys := []int64{0, 1, 4999, 1234}
	out := make([]byte, len(keys)*table.EntryBytes())
	if err := sys.Lookup(2, keys, out); err != nil {
		t.Fatal(err)
	}
	want := make([]byte, table.EntryBytes())
	for i, k := range keys {
		table.ReadRow(k, want)
		if !bytes.Equal(out[i*table.EntryBytes():(i+1)*table.EntryBytes()], want) {
			t.Fatalf("lookup mismatch for key %d", k)
		}
	}

	// Simulated extraction with the stock mechanisms.
	b := &ugache.Batch{Keys: make([][]int64, p.N)}
	for g := range b.Keys {
		b.Keys[g] = genBatch()
	}
	res, err := sys.ExtractBatch(b)
	if err != nil {
		t.Fatal(err)
	}
	peer, err := sys.ExtractWith(ugache.PeerRandom, b)
	if err != nil {
		t.Fatal(err)
	}
	if res.Time <= 0 || peer.Time < res.Time {
		t.Fatalf("factored %g vs peer %g", res.Time, peer.Time)
	}

	// Refresh against drifted hotness.
	drift := make(ugache.Hotness, len(hot))
	for i := range drift {
		drift[i] = hot[len(hot)-1-i]
	}
	cfg := ugache.DefaultRefreshConfig()
	cfg.BatchEntries = 256
	rep, err := sys.Refresh(drift, res.Time, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Duration <= 0 {
		t.Fatal("refresh did nothing")
	}
}

// TestFacadeServe drives the serving engine through the public API:
// concurrent clients, coalesced batches, rows verified against the table.
func TestFacadeServe(t *testing.T) {
	p := ugache.ServerA()
	table, err := ugache.NewMaterializedTable("emb", 2000, 8, ugache.Float32, 11)
	if err != nil {
		t.Fatal(err)
	}
	hot := make(ugache.Hotness, 2000)
	for i := range hot {
		hot[i] = 1 / float64(i+1)
	}
	sys, err := ugache.New(ugache.Config{
		Platform:   p,
		Hotness:    hot,
		EntryBytes: table.EntryBytes(),
		CacheRatio: 0.1,
		Source:     table,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := ugache.Serve(sys, ugache.ServeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	res, err := srv.Lookup(1, []int64{3, 99, 1999})
	if err != nil {
		t.Fatal(err)
	}
	if res.SimSeconds <= 0 || res.BatchKeys < 3 {
		t.Fatalf("degenerate result %+v", res)
	}
	want := make([]byte, table.EntryBytes())
	for i, k := range []int64{3, 99, 1999} {
		table.ReadRow(k, want)
		if !bytes.Equal(res.Rows[i*table.EntryBytes():(i+1)*table.EntryBytes()], want) {
			t.Fatalf("served row %d wrong", k)
		}
	}
	if st := srv.Stats(); st.Requests != 1 || st.Batches < 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestFacadePolicies(t *testing.T) {
	for _, name := range []string{"ugache", "replication", "partition", "clique-partition", "optimal"} {
		if _, err := ugache.PolicyByName(name); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	if ugache.PolicyUGache.Name() != "ugache" || ugache.PolicyOptimal.Name() != "optimal-lp" {
		t.Fatal("stock policies wrong")
	}
}

func TestFacadePlatforms(t *testing.T) {
	if ugache.ServerA().N != 4 || ugache.ServerB().N != 8 || ugache.ServerC().N != 8 {
		t.Fatal("stock platforms wrong")
	}
	p, err := ugache.NewPlatform(ugache.PlatformConfig{
		Name: "2xA100", Kind: 1, GPU: ugache.A100x80, N: 2,
		PCIeBW: 25e9, DRAMBW: 320e9, SwitchPortBW: 270e9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if p.N != 2 {
		t.Fatal("custom platform wrong")
	}
}

func TestFacadeMultiTable(t *testing.T) {
	t1, _ := ugache.NewTable("a", 100, 8, ugache.Float32, 1)
	t2, _ := ugache.NewTable("b", 50, 8, ugache.Float32, 2)
	mt, err := ugache.NewMultiTable([]*ugache.Table{t1, t2})
	if err != nil {
		t.Fatal(err)
	}
	if mt.NumEntries() != 150 {
		t.Fatal("multitable wrong")
	}
}

func TestFacadeHotnessSampler(t *testing.T) {
	s := ugache.NewHotnessSampler(10, 1)
	s.Observe([]int64{1, 2, 2})
	h, err := s.Hotness()
	if err != nil {
		t.Fatal(err)
	}
	if h[1] != 1 || h[2] != 1 {
		t.Fatalf("hotness %v", h[:3])
	}
}
