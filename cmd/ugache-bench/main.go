// ugache-bench regenerates the paper's tables and figures on the simulated
// platforms.
//
// Usage:
//
//	ugache-bench -exp fig10,fig11          # specific experiments
//	ugache-bench -exp all -scale 1.0       # everything at full stand-in scale
//	ugache-bench -list                     # list experiments
//	ugache-bench -exp fig10 -cpuprofile cpu.out -memprofile mem.out
//
// Full-scale runs (-scale 1.0) regenerate the 1/100-scale dataset stand-ins
// and take minutes; -scale 0.1 is a good smoke-test size.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"ugache/internal/bench"
	"ugache/internal/prof"
	"ugache/internal/stats"
	"ugache/internal/telemetry"
	"ugache/internal/timeline"
)

func main() {
	var (
		exps       = flag.String("exp", "all", "comma-separated experiment names, or 'all'")
		scale      = flag.Float64("scale", 0.25, "dataset scale multiplier (1.0 = full stand-in scale)")
		iters      = flag.Int("iters", 3, "measured iterations per configuration")
		seed       = flag.Uint64("seed", 42, "random seed")
		quick      = flag.Bool("quick", false, "trim the configuration matrix")
		workers    = flag.Int("workers", 0, "pre-warm worker pool size (0 = one per CPU, 1 = sequential)")
		list       = flag.Bool("list", false, "list experiments and exit")
		telem      = flag.Bool("telemetry", false, "instrument the experiments' core systems and print a summary table of all collected metrics")
		jsonOut    = flag.String("json-out", "", "write the machine-readable reports of experiments that produce one (e.g. drift, prefetch) to this JSON file")
		lookahead  = flag.Int("lookahead", 0, "narrow the prefetch experiment's lookahead sweep to {0, L} (0 = default {0, 2, 8})")
		staleThr   = flag.Int("stale-threshold", 0, "bounded-staleness window S in batches for the prefetch experiment (0 = experiment default 16)")
		timelineF  = flag.String("timeline", "", "record refresh/solver spans from the instrumented experiments and write Chrome trace-event JSON to this file")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file at exit")
	)
	flag.Parse()

	stopProf, err := prof.Start(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ugache-bench: %v\n", err)
		os.Exit(1)
	}
	code := run(*exps, *scale, *iters, *seed, *quick, *workers, *lookahead, *staleThr, *list, *telem, *timelineF, *jsonOut)
	if err := stopProf(); err != nil {
		fmt.Fprintf(os.Stderr, "ugache-bench: %v\n", err)
		if code == 0 {
			code = 1
		}
	}
	os.Exit(code)
}

func run(exps string, scale float64, iters int, seed uint64, quick bool, workers, lookahead, staleThr int, list, telem bool, timelineF, jsonOut string) int {
	if list {
		names := bench.Names()
		sort.Strings(names)
		for _, n := range names {
			fmt.Printf("%-18s %s\n", n, bench.Registry[n].Brief)
		}
		return 0
	}

	names := bench.Names()
	if exps != "all" {
		names = strings.Split(exps, ",")
	}
	opt := bench.Options{
		Scale: scale, Iters: iters, Seed: seed, Quick: quick, Workers: workers,
		Lookahead: lookahead, StaleBatches: staleThr,
	}
	var reg *telemetry.Registry
	if telem {
		reg = telemetry.NewRegistry(8)
		opt.Telemetry = reg
	}
	var tl *timeline.Recorder
	if timelineF != "" {
		tl = timeline.NewRecorder(1, 0)
		opt.Timeline = tl
	}
	failed := 0
	jsonReports := map[string]any{}
	for _, name := range names {
		name = strings.TrimSpace(name)
		t0 := time.Now()
		res, err := bench.Run(name, opt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ugache-bench: %s: %v\n", name, err)
			failed++
			continue
		}
		fmt.Printf("### %s (%.1fs)\n\n%s\n", name, time.Since(t0).Seconds(), res.Text)
		if res.JSON != nil {
			jsonReports[res.Name] = res.JSON
		}
	}
	if jsonOut != "" {
		var briefs []string
		for _, name := range sortedKeys(jsonReports) {
			briefs = append(briefs, fmt.Sprintf("%s: %s", name, bench.Registry[name].Brief))
		}
		command := "ugache-bench " + strings.Join(os.Args[1:], " ")
		if err := bench.WriteBaseline(jsonOut, strings.Join(briefs, "; "), command, jsonReports); err != nil {
			fmt.Fprintf(os.Stderr, "ugache-bench: %v\n", err)
			failed++
		} else {
			fmt.Printf("### json\n\nwrote %d report(s) to %s\n", len(jsonReports), jsonOut)
		}
	}
	if reg != nil {
		samples := reg.Samples()
		if len(samples) == 0 {
			fmt.Println("### telemetry\n\n(no instrumented experiment ran; fig17 builds the instrumented core)")
		} else {
			t := stats.NewTable("Telemetry: accumulated metrics across the run", "metric", "value")
			for _, s := range samples {
				t.AddRow(s.Name, fmt.Sprintf("%g", s.Value))
			}
			fmt.Printf("### telemetry\n\n%s\n", t.String())
		}
	}
	if tl != nil {
		if err := writeTimeline(tl, timelineF); err != nil {
			fmt.Fprintf(os.Stderr, "ugache-bench: %v\n", err)
			failed++
		} else {
			fmt.Printf("### timeline\n\nwrote %d spans to %s (open in https://ui.perfetto.dev; fig17 emits the refresh/solver tracks)\n", len(tl.Events()), timelineF)
		}
	}
	if failed > 0 {
		return 1
	}
	return 0
}

// sortedKeys returns the report names in stable order for the baseline
// description.
func sortedKeys(m map[string]any) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// writeTimeline exports the recorder's spans as Chrome trace-event JSON.
func writeTimeline(tl *timeline.Recorder, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tl.WriteTrace(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
