// ugache-topo prints the simulated platform topologies and the Fig. 6
// bandwidth-profile microbenchmark.
//
// Usage:
//
//	ugache-topo                 # all three stock servers
//	ugache-topo -server B       # one server
//	ugache-topo -nodes 4        # 4-machine clusters joined by the fabric
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"ugache/internal/platform"
)

func main() {
	server := flag.String("server", "", "A, B, or C (empty = all)")
	nodes := flag.Int("nodes", 1, "machines in the cluster (1 = single machine, no fabric)")
	netBW := flag.Float64("net-bw", 25e9, "inter-machine link bandwidth per NIC, bytes/s")
	netLatency := flag.Duration("net-latency", 10*time.Microsecond, "one-way inter-machine latency")
	flag.Parse()

	if *nodes < 1 {
		fmt.Fprintf(os.Stderr, "ugache-topo: -nodes must be >= 1, got %d\n", *nodes)
		os.Exit(1)
	}
	configs := map[string]platform.Config{
		"A": platform.ServerAConfig(),
		"B": platform.ServerBConfig(),
		"C": platform.ServerCConfig(),
	}
	build := func(name string) *platform.Platform {
		cfg := configs[name]
		if *nodes > 1 {
			net := platform.NetworkConfig{Machines: *nodes, LinkBW: *netBW, LatencySec: netLatency.Seconds()}
			p, err := platform.ClusterOf(cfg, net)
			if err != nil {
				fmt.Fprintf(os.Stderr, "ugache-topo: %v\n", err)
				os.Exit(1)
			}
			return p
		}
		p, err := platform.New(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ugache-topo: %v\n", err)
			os.Exit(1)
		}
		return p
	}
	order := []string{"A", "B", "C"}
	if *server != "" {
		if _, ok := configs[*server]; !ok {
			fmt.Fprintf(os.Stderr, "ugache-topo: unknown server %q\n", *server)
			os.Exit(1)
		}
		show(build(*server))
		return
	}
	for _, k := range order {
		show(build(k))
		fmt.Println()
	}
}

func show(p *platform.Platform) {
	if p.HasNetwork() {
		fmt.Printf("%s: %d machines × %d × %s, %s\n", p.Name, p.Machines(), p.N, p.GPU.Name, p.Kind)
	} else {
		fmt.Printf("%s: %d × %s, %s\n", p.Name, p.N, p.GPU.Name, p.Kind)
	}
	fmt.Printf("  per-GPU PCIe %.0f GB/s, host DRAM %.0f GB/s shared\n", p.PCIeBW/1e9, p.DRAMBW/1e9)
	if p.Kind == platform.SwitchBased {
		fmt.Printf("  NVSwitch port %.0f GB/s per GPU (out and in)\n", p.SwitchPortBW/1e9)
	} else {
		fmt.Println("  NVLink pair bandwidth (GB/s; '-' = unconnected):")
		fmt.Print("      ")
		for j := 0; j < p.N; j++ {
			fmt.Printf("g%-4d", j)
		}
		fmt.Println()
		for i := 0; i < p.N; i++ {
			fmt.Printf("  g%-2d ", i)
			for j := 0; j < p.N; j++ {
				switch {
				case i == j:
					fmt.Printf("%-5s", ".")
				case p.PairBW[i][j] > 0:
					fmt.Printf("%-5.0f", p.PairBW[i][j]/1e9)
				default:
					fmt.Printf("%-5s", "-")
				}
			}
			fmt.Println()
		}
	}
	if p.HasNetwork() {
		// The network tier: every machine is a replica of this one, joined
		// by one NIC; remote rows land in local DRAM and cross local PCIe.
		fmt.Printf("  network tier: %d machines over %.0f GB/s NICs, %.0fus one-way\n",
			p.Machines(), p.Net.LinkBW/1e9, p.Net.LatencySec*1e6)
		if bw, ok := p.LinkBW(0, p.Network()); ok {
			fmt.Printf("    wire path dram->nic->pcie, bottleneck %.0f GB/s; owned shard 1/%d served host-side\n",
				bw/1e9, p.Machines())
		}
	}
	// Tolerances (Fig. 6's knees).
	hostTol, _ := p.Tolerance(0, p.Host())
	locTol, _ := p.Tolerance(0, 0)
	fmt.Printf("  core tolerance: host %.1f, local %.1f", hostTol, locTol)
	if p.N > 1 {
		if remTol, ok := p.Tolerance(0, 1); ok {
			fmt.Printf(", remote(g1) %.1f", remTol)
		}
	}
	if p.HasNetwork() {
		if netTol, ok := p.Tolerance(0, p.Network()); ok {
			fmt.Printf(", network %.1f", netTol)
		}
	}
	fmt.Printf(" of %d SMs\n", p.GPU.SMs)
	// FEM dedication for GPU 0 (§5.3).
	ded := p.FEMDedication(0)
	fmt.Print("  FEM dedication (gpu0): ")
	for j, c := range ded {
		if c == 0 {
			continue
		}
		name := fmt.Sprintf("g%d", j)
		switch {
		case j == int(p.Host()):
			name = "host"
		case p.HasNetwork() && j == int(p.Network()):
			name = "net"
		}
		fmt.Printf("%s=%.1f ", name, c)
	}
	fmt.Println("(local = padding)")
}
