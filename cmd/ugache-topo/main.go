// ugache-topo prints the simulated platform topologies and the Fig. 6
// bandwidth-profile microbenchmark.
//
// Usage:
//
//	ugache-topo                 # all three stock servers
//	ugache-topo -server B       # one server
package main

import (
	"flag"
	"fmt"
	"os"

	"ugache/internal/platform"
)

func main() {
	server := flag.String("server", "", "A, B, or C (empty = all)")
	flag.Parse()

	servers := map[string]*platform.Platform{
		"A": platform.ServerA(),
		"B": platform.ServerB(),
		"C": platform.ServerC(),
	}
	order := []string{"A", "B", "C"}
	if *server != "" {
		p, ok := servers[*server]
		if !ok {
			fmt.Fprintf(os.Stderr, "ugache-topo: unknown server %q\n", *server)
			os.Exit(1)
		}
		show(p)
		return
	}
	for _, k := range order {
		show(servers[k])
		fmt.Println()
	}
}

func show(p *platform.Platform) {
	fmt.Printf("%s: %d × %s, %s\n", p.Name, p.N, p.GPU.Name, p.Kind)
	fmt.Printf("  per-GPU PCIe %.0f GB/s, host DRAM %.0f GB/s shared\n", p.PCIeBW/1e9, p.DRAMBW/1e9)
	if p.Kind == platform.SwitchBased {
		fmt.Printf("  NVSwitch port %.0f GB/s per GPU (out and in)\n", p.SwitchPortBW/1e9)
	} else {
		fmt.Println("  NVLink pair bandwidth (GB/s; '-' = unconnected):")
		fmt.Print("      ")
		for j := 0; j < p.N; j++ {
			fmt.Printf("g%-4d", j)
		}
		fmt.Println()
		for i := 0; i < p.N; i++ {
			fmt.Printf("  g%-2d ", i)
			for j := 0; j < p.N; j++ {
				switch {
				case i == j:
					fmt.Printf("%-5s", ".")
				case p.PairBW[i][j] > 0:
					fmt.Printf("%-5.0f", p.PairBW[i][j]/1e9)
				default:
					fmt.Printf("%-5s", "-")
				}
			}
			fmt.Println()
		}
	}
	// Tolerances (Fig. 6's knees).
	hostTol, _ := p.Tolerance(0, p.Host())
	locTol, _ := p.Tolerance(0, 0)
	fmt.Printf("  core tolerance: host %.1f, local %.1f", hostTol, locTol)
	if p.N > 1 {
		if remTol, ok := p.Tolerance(0, 1); ok {
			fmt.Printf(", remote(g1) %.1f", remTol)
		}
	}
	fmt.Printf(" of %d SMs\n", p.GPU.SMs)
	// FEM dedication for GPU 0 (§5.3).
	ded := p.FEMDedication(0)
	fmt.Print("  FEM dedication (gpu0): ")
	for j, c := range ded {
		if c == 0 {
			continue
		}
		name := fmt.Sprintf("g%d", j)
		if j == int(p.Host()) {
			name = "host"
		}
		fmt.Printf("%s=%.1f ", name, c)
	}
	fmt.Println("(local = padding)")
}
