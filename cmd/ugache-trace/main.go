// ugache-trace generates, inspects, and replays DLR key traces so identical
// access streams can be fed to different systems.
//
// Usage:
//
//	ugache-trace -gen trace.bin -dataset SYN-A -batches 64 -batch 8192
//	ugache-trace -info trace.bin
//	ugache-trace -check-timeline trace.json   # validate a span timeline
//	ugache-trace -check-bundle bundles/flight-20260809-120000.000000000
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"ugache/internal/flight"
	"ugache/internal/timeline"
	"ugache/internal/workload"
)

func main() {
	var (
		gen      = flag.String("gen", "", "write a trace to this file")
		info     = flag.String("info", "", "print a trace's summary")
		checkTL  = flag.String("check-timeline", "", "validate a Chrome trace-event JSON file written by -trace-out / /debug/timeline")
		checkBun = flag.String("check-bundle", "", "validate a flight-recorder diagnostic bundle directory (manifest, JSONL events, exemplar span resolution)")
		dataset  = flag.String("dataset", "SYN-A", "CR, SYN-A, or SYN-B")
		scale    = flag.Float64("scale", 0.25, "dataset scale")
		batches  = flag.Int("batches", 64, "number of batches")
		batch    = flag.Int("batch", 8192, "inference samples per batch")
		seed     = flag.Uint64("seed", 42, "random seed")
	)
	flag.Parse()

	switch {
	case *gen != "":
		var spec workload.DLRSpec
		switch *dataset {
		case "CR":
			spec = workload.CR
		case "SYN-A":
			spec = workload.SYNA
		case "SYN-B":
			spec = workload.SYNB
		default:
			fatal("unknown dataset %q", *dataset)
		}
		ds, err := spec.Build(*scale, *seed)
		if err != nil {
			fatal("%v", err)
		}
		tr := workload.Record(ds.NumEntries(), *batches, func() []int64 {
			return ds.GenBatch(*batch)
		})
		f, err := os.Create(*gen)
		if err != nil {
			fatal("%v", err)
		}
		defer f.Close()
		if err := tr.Save(f); err != nil {
			fatal("%v", err)
		}
		fmt.Printf("wrote %d batches (%d keys each) over %d entries to %s\n",
			len(tr.Batches), len(tr.Batches[0]), tr.NumEntries, *gen)

	case *info != "":
		f, err := os.Open(*info)
		if err != nil {
			fatal("%v", err)
		}
		defer f.Close()
		tr, err := workload.LoadTrace(f)
		if err != nil {
			fatal("%v", err)
		}
		hot, err := workload.ProfileBatches(tr.NumEntries, tr.Batches)
		if err != nil {
			fatal("%v", err)
		}
		total := 0
		for _, b := range tr.Batches {
			total += len(b)
		}
		fmt.Printf("%s: %d batches, %d keys total, %d entries\n",
			*info, len(tr.Batches), total, tr.NumEntries)
		for _, frac := range []float64{0.001, 0.01, 0.1} {
			fmt.Printf("  top %5.1f%% of entries cover %5.1f%% of accesses\n",
				frac*100, hot.TopShare(frac)*100)
		}

	case *checkTL != "":
		f, err := os.Open(*checkTL)
		if err != nil {
			fatal("%v", err)
		}
		defer f.Close()
		rep, err := timeline.Validate(f)
		if err != nil {
			fatal("%v", err)
		}
		fmt.Printf("%s: valid Chrome trace, %d events\n", *checkTL, rep.Events)
		phases := make([]string, 0, len(rep.ByPhase))
		for ph := range rep.ByPhase {
			phases = append(phases, ph)
		}
		sort.Strings(phases)
		for _, ph := range phases {
			fmt.Printf("  phase %q: %d\n", ph, rep.ByPhase[ph])
		}
		names := make([]string, 0, len(rep.Names))
		for name := range rep.Names {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			fmt.Printf("  %-34s %d\n", name, rep.Names[name])
		}

	case *checkBun != "":
		rep, err := flight.ValidateBundle(*checkBun)
		if err != nil {
			fatal("%v", err)
		}
		man := rep.Manifest
		fmt.Printf("%s: valid bundle (reason %q, created %s)\n", *checkBun, man.Reason, man.Created)
		fmt.Printf("  files:            %v\n", man.Files)
		fmt.Printf("  flight events:    %d\n", rep.EventLines)
		kinds := make([]string, 0, len(rep.EventsByKind))
		for k := range rep.EventsByKind {
			kinds = append(kinds, k)
		}
		sort.Strings(kinds)
		for _, k := range kinds {
			fmt.Printf("    %-16s %d\n", k, rep.EventsByKind[k])
		}
		fmt.Printf("  metric samples:   %d\n", rep.MetricCount)
		fmt.Printf("  timeline events:  %d\n", rep.TimelineEvents)
		for _, v := range man.Violations {
			state := "ok"
			if v.Breached {
				state = "BREACHED"
			}
			fmt.Printf("  signal %-28s %s (short %.4g, long %.4g, threshold %.4g)\n",
				v.Name, state, v.Short, v.Long, v.Threshold)
		}
		if ex := man.Exemplar; ex != nil {
			fmt.Printf("  exemplar:         batch seq %d on gpu %d (%.3fms) -> span tree of %d spans\n",
				ex.Seq, ex.GPU, ex.LatencySeconds*1e3, rep.ExemplarSpans)
		}

	default:
		flag.Usage()
		os.Exit(2)
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "ugache-trace: "+format+"\n", args...)
	os.Exit(1)
}
