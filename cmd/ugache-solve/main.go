// ugache-solve solves a cache policy for a synthetic workload and prints
// the placement summary — a harness around the paper's Solver (§6).
//
// Usage:
//
//	ugache-solve -server C -entries 1000000 -alpha 1.2 -ratio 0.08
//	ugache-solve -policy partition -compare
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"time"

	"ugache/internal/platform"
	"ugache/internal/rng"
	"ugache/internal/solver"
	"ugache/internal/workload"
)

func main() {
	var (
		server  = flag.String("server", "C", "platform: A, B, or C")
		entries = flag.Int("entries", 200000, "embedding entries")
		alpha   = flag.Float64("alpha", 1.2, "Zipf skew of the synthetic hotness")
		ratio   = flag.Float64("ratio", 0.08, "per-GPU cache ratio")
		dim     = flag.Int("dim", 128, "embedding dimension (float32)")
		policy  = flag.String("policy", "ugache", "policy name (see -compare for all)")
		compare = flag.Bool("compare", false, "solve with every policy family")
		save    = flag.String("save", "", "write the solved placement to this file")
		seed    = flag.Uint64("seed", 42, "random seed")
		workers = flag.Int("solver-workers", 0, "branch-and-bound workers for exact policies (0/1 sequential, -1 all cores)")
		relgap  = flag.Float64("relgap", 0, "relative optimality gap for exact policies (0 proves optimality)")
		blocks  = flag.Int("blocks", 0, "hotness block budget (0 = policy default; the exact policy needs a reduced count)")
	)
	flag.Parse()

	var p *platform.Platform
	switch *server {
	case "A":
		p = platform.ServerA()
	case "B":
		p = platform.ServerB()
	case "C":
		p = platform.ServerC()
	default:
		fmt.Fprintf(os.Stderr, "ugache-solve: unknown server %q\n", *server)
		os.Exit(1)
	}

	r := rng.New(*seed)
	perm := r.Perm(*entries)
	h := make(workload.Hotness, *entries)
	for rank := 0; rank < *entries; rank++ {
		h[perm[rank]] = math.Pow(float64(rank+1), -*alpha)
	}
	caps := make([]int64, p.N)
	for g := range caps {
		caps[g] = int64(*ratio * float64(*entries))
	}
	in := &solver.Input{P: p, Hotness: h, EntryBytes: *dim * 4, Capacity: caps, BlockBudget: *blocks}

	names := []string{*policy}
	if *compare {
		names = []string{"replication", "partition", "clique-partition", "rep-part", "ugache-greedy", "ugache", "optimal"}
	}
	fmt.Printf("%s, %d entries, zipf %.2f, ratio %.1f%%, dim %d\n\n",
		p.Name, *entries, *alpha, *ratio*100, *dim)
	fmt.Printf("%-18s %12s %10s %8s %8s %8s %10s\n",
		"policy", "est time", "solve", "local", "remote", "host", "blocks")
	for _, name := range names {
		pol, err := solver.PolicyByName(name)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ugache-solve:", err)
			os.Exit(1)
		}
		t0 := time.Now()
		pl, err := solver.SolveWith(pol, in, solver.Options{Workers: *workers, RelGap: *relgap})
		if err != nil {
			fmt.Printf("%-18s %s\n", name, err)
			continue
		}
		el := time.Since(t0)
		if err := pl.Validate(in); err != nil {
			fmt.Printf("%-18s INVALID: %v\n", name, err)
			continue
		}
		maxT := 0.0
		for _, t := range pl.EstTimes {
			if t > maxT {
				maxT = t
			}
		}
		st := pl.Stats(h)[0]
		fmt.Printf("%-18s %10.4gus %10s %7.1f%% %7.1f%% %7.1f%% %10d\n",
			name, maxT*1e6, el.Round(time.Millisecond),
			st.Local*100, st.Remote*100, st.Host*100, len(pl.Blocks))
		if pl.LowerBound > 0 {
			if pl.SolveNodes > 0 {
				fmt.Printf("%-18s   (lower bound %.4gus, %d B&B nodes)\n", "", pl.LowerBound*1e6, pl.SolveNodes)
			} else {
				fmt.Printf("%-18s   (LP lower bound %.4gus)\n", "", pl.LowerBound*1e6)
			}
		}
		if *save != "" && !*compare {
			f, err := os.Create(*save)
			if err != nil {
				fmt.Fprintln(os.Stderr, "ugache-solve:", err)
				os.Exit(1)
			}
			if err := pl.Save(f); err != nil {
				fmt.Fprintln(os.Stderr, "ugache-solve:", err)
				os.Exit(1)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "ugache-solve:", err)
				os.Exit(1)
			}
			fmt.Printf("placement saved to %s\n", *save)
		}
	}
}
