package main

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"ugache/internal/cluster"
	"ugache/internal/core"
	"ugache/internal/flight"
	"ugache/internal/platform"
	"ugache/internal/rng"
	"ugache/internal/serve"
	"ugache/internal/solver"
	"ugache/internal/telemetry"
	"ugache/internal/timeline"
	"ugache/internal/workload"
)

// clusterPlatform builds the clustered twin of the named single-machine
// server: the same GPUs and intra-machine links, joined to machines-1 peers
// over the configured network fabric.
func clusterPlatform(name string, machines int, linkBW float64, latency time.Duration) (*platform.Platform, error) {
	var cfg platform.Config
	switch name {
	case "A", "a":
		cfg = platform.ServerAConfig()
	case "B", "b":
		cfg = platform.ServerBConfig()
	case "C", "c":
		cfg = platform.ServerCConfig()
	default:
		return nil, fmt.Errorf("unknown server %q (have A, B, C)", name)
	}
	net := platform.NetworkConfig{Machines: machines, LinkBW: linkBW, LatencySec: latency.Seconds()}
	return platform.ClusterOf(cfg, net)
}

// runCluster is the -nodes N mode: N in-process single-machine engines, each
// solved on the clustered platform with its own ring-shard Owned predicate,
// joined by the consistent-hash front end. Closed-loop clients issue routed
// lookups; the report adds the cluster split (network-tier hits, cross-node
// bytes, dispatch coalescing, partial failures) to the usual serving
// summary. Open-loop, refresh and prefetch remain single-node features.
func runCluster(o options) error {
	if o.openLoop || o.refresh || o.mode != "off" || o.lookahead > 0 {
		return fmt.Errorf("-nodes > 1 supports the closed-loop client mode only (no -open-loop, -refresh, -refresh-mode, -lookahead)")
	}
	spec, err := specByName(o.dataset)
	if err != nil {
		return err
	}
	p, err := clusterPlatform(o.server, o.nodes, o.netBW, o.netLatency)
	if err != nil {
		return err
	}
	ds, err := spec.Build(o.scale, o.seed)
	if err != nil {
		return err
	}
	n := ds.NumEntries()
	fmt.Printf("dataset %s at scale %g: %d tables, %d entries, %d B rows\n",
		spec.Name, o.scale, ds.KeysPerSample(), n, ds.MT.MaxEntryBytes())
	fmt.Printf("cluster:           %d nodes of %s, wire %.0f GB/s, %.0fus one-way\n",
		o.nodes, p.Name, o.netBW/1e9, o.netLatency.Seconds()*1e6)

	var rec [][]int64
	for i := 0; i < 64; i++ {
		rec = append(rec, ds.GenBatch(o.batch*o.clients))
	}
	hot, err := workload.ProfileBatches(n, rec)
	if err != nil {
		return err
	}

	// One registry, timeline, and flight recorder shared across every node
	// and the router, so /metrics and the bundle show the whole cluster.
	reg := telemetry.NewRegistry(p.N * o.nodes)
	var tl *timeline.Recorder
	if o.traceOut != "" {
		tl = timeline.NewRecorder(p.N*o.nodes, 0)
	}
	var fl *flight.Recorder
	if o.flight {
		fl = flight.NewRecorder(p.N*o.nodes, o.flightDepth)
	}

	// The ring must exist before the engines (each node's Owned predicate is
	// its shard); rings are deterministic in (n, vnodes, seed), so the front
	// built later from the same seed is an exact twin.
	ring := cluster.MustRing(o.nodes, 0, o.seed)
	t0 := time.Now()
	nodes := make([]*cluster.Node, o.nodes)
	for i := range nodes {
		self := i
		sys, err := core.Build(core.Config{
			Platform:   p,
			Hotness:    hot,
			EntryBytes: ds.MT.MaxEntryBytes(),
			CacheRatio: o.ratio,
			Source:     ds.MT,
			Solver:     solver.Options{Workers: o.workers, RelGap: o.relgap},
			Telemetry:  reg,
			Owned:      func(k int64) bool { return ring.Owner(k) == self },
		})
		if err != nil {
			return fmt.Errorf("node %d: %w", i, err)
		}
		srv, err := serve.New(sys, serve.Config{
			MaxBatchKeys: o.maxBatch,
			MaxWait:      o.maxWait,
			Telemetry:    reg,
			TraceDepth:   o.traceDepth,
			Timeline:     tl,
			Flight:       fl,
			QueueDepth:   o.queueDepth,
		})
		if err != nil {
			return fmt.Errorf("node %d: %w", i, err)
		}
		nodes[i] = &cluster.Node{Sys: sys, Srv: srv}
	}
	front, err := cluster.NewFront(nodes, cluster.FrontConfig{
		Seed:      o.seed,
		Telemetry: reg,
		Timeline:  tl,
		Flight:    fl,
	})
	if err != nil {
		return err
	}
	defer func() {
		front.Close()
		for _, nd := range nodes {
			nd.Srv.Close()
		}
	}()
	fmt.Printf("built %d nodes:     cache ratio %g solved and filled in %.2fs (placements are identical; one solve per node)\n",
		o.nodes, o.ratio, time.Since(t0).Seconds())

	// Closed loop across the cluster: client c sticks to node c%N (session
	// affinity), round-robining that node's GPUs.
	var (
		mu       sync.Mutex
		lats     []time.Duration
		firstErr error
		partials int64
		missing  int64
	)
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < o.clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			r := rng.New(o.seed).Split(fmt.Sprintf("client%d", c))
			node := c % o.nodes
			var myLats []time.Duration
			var myPartials, myMissing int64
			for i := 0; i < o.requests; i++ {
				keys := ds.GenBatchWith(r, o.batch)
				reqStart := time.Now()
				res := front.Lookup(node, (c+i)%p.N, keys)
				if res.Err != nil && res.Err != cluster.ErrPartial {
					mu.Lock()
					if firstErr == nil {
						firstErr = fmt.Errorf("client %d: %w", c, res.Err)
					}
					mu.Unlock()
					return
				}
				if res.Err == cluster.ErrPartial {
					myPartials++
					myMissing += int64(res.Missing)
				}
				myLats = append(myLats, time.Since(reqStart))
			}
			mu.Lock()
			lats = append(lats, myLats...)
			partials += myPartials
			missing += myMissing
			mu.Unlock()
		}(c)
	}
	wg.Wait()
	wall := time.Since(start)
	if firstErr != nil {
		return firstErr
	}

	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	pct := func(q float64) time.Duration {
		if len(lats) == 0 {
			return 0
		}
		return lats[int(q*float64(len(lats)-1))]
	}
	metric := func(name string) float64 {
		for _, s := range reg.Samples() {
			if s.Name == name {
				return s.Value
			}
		}
		return 0
	}
	total := len(lats)
	fmt.Printf("\n%d clients x %d requests (%d samples each) over %d nodes in %.2fs\n",
		o.clients, o.requests, o.batch, o.nodes, wall.Seconds())
	fmt.Printf("throughput:        %.0f req/s, %.0f keys/s\n",
		float64(total)/wall.Seconds(), metric("serve_requested_keys_total")/wall.Seconds())
	fmt.Printf("latency:           p50 %v  p99 %v  max %v\n", pct(0.50), pct(0.99), pct(1.0))
	local, remote, host, network := metric("core_hit_local_keys_total"),
		metric("core_hit_remote_keys_total"), metric("core_hit_host_keys_total"),
		metric("core_hit_network_keys_total")
	if sum := local + remote + host + network; sum > 0 {
		fmt.Printf("hit tiers:         %.1f%% local, %.1f%% remote, %.1f%% host, %.1f%% network\n",
			100*local/sum, 100*remote/sum, 100*host/sum, 100*network/sum)
	}
	fmt.Printf("router:            %.0f lookups; %.0f keys local, %.0f cross-node (%.0f dispatches, %.1f keys/dispatch)\n",
		metric("cluster_lookups_total"), metric("cluster_local_keys_total"),
		metric("cluster_remote_keys_total"), metric("cluster_dispatches_total"),
		metric("cluster_dispatch_keys_total")/maxF64(metric("cluster_dispatches_total"), 1))
	fmt.Printf("cross-node bytes:  %.1f MB over the wire (queue peak %.0f keys)\n",
		metric("cluster_cross_node_bytes_total")/1e6, metric("cluster_router_queue_depth_peak"))
	if partials > 0 {
		fmt.Printf("partial results:   %d lookups returned partial (%d keys missed the deadline)\n", partials, missing)
	}
	if o.traceOut != "" {
		if err := writeTrace(tl, o.traceOut); err != nil {
			return err
		}
		fmt.Printf("timeline:          %d spans -> %s\n", len(tl.Events()), o.traceOut)
	}
	if o.metricsOut != "" {
		if err := writeMetricsJSON(reg, o.metricsOut); err != nil {
			return err
		}
		fmt.Printf("metrics:           final snapshot -> %s\n", o.metricsOut)
	}
	return nil
}

func maxF64(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
