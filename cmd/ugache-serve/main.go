// ugache-serve runs a closed-loop multi-client DLR inference workload
// against the concurrent serving engine: N client goroutines issue lookup
// requests for Zipf-drawn embedding keys, the per-GPU coalescer batches
// them into iteration-sized extractions, and the run reports throughput,
// request latency percentiles, and the simulated extraction times of the
// coalesced batches.
//
// Usage:
//
//	ugache-serve -dataset SYN-A -clients 16 -requests 200
//	ugache-serve -dataset CR -scale 0.1 -ratio 0.08 -max-wait 1ms
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"sync"
	"time"

	"ugache/internal/core"
	"ugache/internal/platform"
	"ugache/internal/prof"
	"ugache/internal/rng"
	"ugache/internal/serve"
	"ugache/internal/telemetry"
	"ugache/internal/workload"
)

func main() {
	var (
		dataset    = flag.String("dataset", "SYN-A", "DLR dataset: CR, SYN-A or SYN-B")
		server     = flag.String("server", "C", "platform: A (4xV100), B (8xV100 DGX-1) or C (8xA100)")
		scale      = flag.Float64("scale", 0.05, "dataset scale multiplier")
		ratio      = flag.Float64("ratio", 0.10, "per-GPU cache ratio")
		clients    = flag.Int("clients", 8, "concurrent closed-loop clients")
		requests   = flag.Int("requests", 100, "requests per client")
		batch      = flag.Int("batch", 16, "inference samples per request")
		maxBatch   = flag.Int("max-batch", 8192, "coalescer flush threshold in pending keys")
		maxWait    = flag.Duration("max-wait", 2*time.Millisecond, "coalescer flush deadline")
		seed       = flag.Uint64("seed", 42, "random seed")
		listen     = flag.String("listen", "", "serve /metrics and /debug/trace on this address (e.g. :9090); keeps the process alive after the run until interrupted")
		traceDepth = flag.Int("trace-depth", 256, "per-batch trace ring depth (negative disables tracing)")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file at exit")
	)
	flag.Parse()
	stopProf, err := prof.Start(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ugache-serve: %v\n", err)
		os.Exit(1)
	}
	runErr := run(*dataset, *server, *scale, *ratio, *clients, *requests, *batch, *maxBatch, *maxWait, *seed, *listen, *traceDepth)
	if err := stopProf(); err != nil && runErr == nil {
		runErr = err
	}
	if runErr != nil {
		fmt.Fprintf(os.Stderr, "ugache-serve: %v\n", runErr)
		os.Exit(1)
	}
}

func specByName(name string) (workload.DLRSpec, error) {
	for _, s := range workload.DLRDatasets {
		if s.Name == name {
			return s, nil
		}
	}
	return workload.DLRSpec{}, fmt.Errorf("unknown dataset %q (have CR, SYN-A, SYN-B)", name)
}

func platformByName(name string) (*platform.Platform, error) {
	switch name {
	case "A", "a":
		return platform.ServerA(), nil
	case "B", "b":
		return platform.ServerB(), nil
	case "C", "c":
		return platform.ServerC(), nil
	}
	return nil, fmt.Errorf("unknown server %q (have A, B, C)", name)
}

func run(dataset, server string, scale, ratio float64, clients, requests, batch, maxBatch int,
	maxWait time.Duration, seed uint64, listen string, traceDepth int) error {
	spec, err := specByName(dataset)
	if err != nil {
		return err
	}
	p, err := platformByName(server)
	if err != nil {
		return err
	}
	ds, err := spec.Build(scale, seed)
	if err != nil {
		return err
	}
	n := ds.NumEntries()
	fmt.Printf("dataset %s at scale %g: %d tables, %d entries, %d B rows\n",
		spec.Name, scale, ds.KeysPerSample(), n, ds.MT.MaxEntryBytes())

	// Warm hotness from the dataset's own stream, then build the system in
	// functional mode so lookups return (and verify against) real bytes.
	var rec [][]int64
	for i := 0; i < 64; i++ {
		rec = append(rec, ds.GenBatch(batch*clients))
	}
	hot, err := workload.ProfileBatches(n, rec)
	if err != nil {
		return err
	}
	// One registry shared across the core (extraction tiers, refresh) and
	// the serving engine (latency, coalescing); the HTTP handler reads it.
	reg := telemetry.NewRegistry(p.N)
	t0 := time.Now()
	sys, err := core.Build(core.Config{
		Platform:   p,
		Hotness:    hot,
		EntryBytes: ds.MT.MaxEntryBytes(),
		CacheRatio: ratio,
		Source:     ds.MT,
		Telemetry:  reg,
	})
	if err != nil {
		return err
	}
	fmt.Printf("built %s: cache ratio %g solved and filled in %.2fs\n",
		p.Name, ratio, time.Since(t0).Seconds())

	srv, err := serve.New(sys, serve.Config{
		MaxBatchKeys: maxBatch,
		MaxWait:      maxWait,
		Telemetry:    reg,
		TraceDepth:   traceDepth,
	})
	if err != nil {
		return err
	}
	defer srv.Close()

	if listen != "" {
		ln, err := net.Listen("tcp", listen)
		if err != nil {
			return fmt.Errorf("telemetry listener: %w", err)
		}
		defer ln.Close()
		go func() {
			if err := http.Serve(ln, telemetry.Handler(reg, srv.Trace())); err != nil {
				// The listener closes on exit; anything else is worth a note.
				fmt.Fprintf(os.Stderr, "ugache-serve: telemetry server: %v\n", err)
			}
		}()
		fmt.Printf("telemetry:         http://%s/metrics and /debug/trace\n", ln.Addr())
	}

	// Closed loop: each client issues its next request as soon as the
	// previous one completes, round-robining destination GPUs.
	latencies := make([][]time.Duration, clients)
	var simSum float64
	var simMu sync.Mutex
	var wg sync.WaitGroup
	start := time.Now()
	errCh := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			r := rng.New(seed).Split(fmt.Sprintf("client%d", c))
			lats := make([]time.Duration, 0, requests)
			var localSim float64
			for i := 0; i < requests; i++ {
				keys := ds.GenBatchWith(r, batch)
				reqStart := time.Now()
				res, err := srv.Lookup((c+i)%p.N, keys)
				if err != nil {
					errCh <- fmt.Errorf("client %d: %w", c, err)
					return
				}
				lats = append(lats, time.Since(reqStart))
				localSim += res.SimSeconds
			}
			latencies[c] = lats
			simMu.Lock()
			simSum += localSim
			simMu.Unlock()
		}(c)
	}
	wg.Wait()
	wall := time.Since(start)
	close(errCh)
	for err := range errCh {
		return err
	}

	var all []time.Duration
	for _, l := range latencies {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	pct := func(q float64) time.Duration {
		if len(all) == 0 {
			return 0
		}
		i := int(q * float64(len(all)-1))
		return all[i]
	}
	st := srv.Stats()
	total := len(all)
	fmt.Printf("\n%d clients x %d requests (%d samples each) in %.2fs\n",
		clients, requests, batch, wall.Seconds())
	fmt.Printf("throughput:        %.0f req/s, %.0f keys/s\n",
		float64(total)/wall.Seconds(), float64(st.RequestedKeys)/wall.Seconds())
	fmt.Printf("latency:           p50 %v  p99 %v  max %v\n", pct(0.50), pct(0.99), pct(1.0))
	fmt.Printf("coalescing:        %d batches, %.1f unique keys/batch (%.1f requested)\n",
		st.Batches, st.MeanBatchKeys(), float64(st.RequestedKeys)/float64(maxI64(st.Batches, 1)))
	fmt.Printf("simulated extract: %.3f ms/batch mean, %.1f ms total per request stream\n",
		st.SimSeconds/float64(maxI64(st.Batches, 1))*1e3, simSum/float64(maxI64(int64(clients), 1))*1e3)

	// Per-tier hit split from the shared registry (local / peer / host).
	tier := func(name string) float64 {
		for _, s := range reg.Samples() {
			if s.Name == name {
				return s.Value
			}
		}
		return 0
	}
	local, remote, host := tier("core_hit_local_keys_total"),
		tier("core_hit_remote_keys_total"), tier("core_hit_host_keys_total")
	if sum := local + remote + host; sum > 0 {
		fmt.Printf("hit tiers:         %.1f%% local, %.1f%% remote, %.1f%% host (of %d unique keys)\n",
			100*local/sum, 100*remote/sum, 100*host/sum, st.UniqueKeys)
	}

	if listen != "" {
		fmt.Printf("\nrun complete; telemetry still live on %s — Ctrl-C to exit\n", listen)
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt)
		<-sig
	}
	return nil
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
