// ugache-serve runs a closed-loop multi-client DLR inference workload
// against the concurrent serving engine: N client goroutines issue lookup
// requests for Zipf-drawn embedding keys, the per-GPU coalescer batches
// them into iteration-sized extractions, and the run reports throughput,
// request latency percentiles, and the simulated extraction times of the
// coalesced batches.
//
// With -open-loop the closed-loop clients are replaced by rate-driven
// dispatchers: arrivals are scheduled by -qps alone (Poisson or bursty
// MMPP), never by completions, so the engine can be pushed past its
// admission knee and the run reports sheds alongside the latency of
// admitted requests (measured from intended arrival time).
//
// Usage:
//
//	ugache-serve -dataset SYN-A -clients 16 -requests 200
//	ugache-serve -dataset CR -scale 0.1 -ratio 0.08 -max-wait 1ms
//	ugache-serve -refresh -trace-out trace.json   # Perfetto-loadable spans
//	ugache-serve -open-loop -qps 200000 -arrivals mmpp -duration 5s
//	ugache-serve -open-loop -qps 300000 -admission 500us   # bounded wait
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strings"
	"sync"
	"syscall"
	"time"

	"ugache/internal/cache"
	"ugache/internal/core"
	"ugache/internal/flight"
	"ugache/internal/platform"
	"ugache/internal/prof"
	"ugache/internal/rng"
	"ugache/internal/serve"
	"ugache/internal/solver"
	"ugache/internal/telemetry"
	"ugache/internal/timeline"
	"ugache/internal/workload"
)

// options bundles the command's knobs (one field per flag).
type options struct {
	dataset    string
	server     string
	scale      float64
	ratio      float64
	clients    int
	requests   int
	batch      int
	maxBatch   int
	maxWait    time.Duration
	seed       uint64
	listen     string
	traceDepth int
	traceOut   string
	refresh    bool
	mode       string
	driftThr   float64
	checkEvery int
	period     int
	workers    int
	relgap     float64
	lookahead  int
	staleThr   int

	openLoop   bool
	qps        float64
	arrivals   string
	users      int64
	duration   time.Duration
	admission  string
	queueDepth int

	flight      bool
	flightDepth int
	sloP99Ms    float64
	bundleDir   string
	metricsOut  string
	pprofOn     bool

	nodes      int
	netBW      float64
	netLatency time.Duration
}

func main() {
	var o options
	flag.StringVar(&o.dataset, "dataset", "SYN-A", "DLR dataset: CR, SYN-A or SYN-B")
	flag.StringVar(&o.server, "server", "C", "platform: A (4xV100), B (8xV100 DGX-1) or C (8xA100)")
	flag.Float64Var(&o.scale, "scale", 0.05, "dataset scale multiplier")
	flag.Float64Var(&o.ratio, "ratio", 0.10, "per-GPU cache ratio")
	flag.IntVar(&o.clients, "clients", 8, "concurrent closed-loop clients")
	flag.IntVar(&o.requests, "requests", 100, "requests per client")
	flag.IntVar(&o.batch, "batch", 16, "inference samples per request")
	flag.IntVar(&o.maxBatch, "max-batch", 8192, "coalescer flush threshold in pending keys")
	flag.DurationVar(&o.maxWait, "max-wait", 2*time.Millisecond, "coalescer flush deadline")
	flag.Uint64Var(&o.seed, "seed", 42, "random seed")
	flag.StringVar(&o.listen, "listen", "", "serve /metrics, /debug/trace, /debug/timeline, /healthz and /readyz on this address (e.g. :9090); keeps the process alive after the run until interrupted")
	flag.IntVar(&o.traceDepth, "trace-depth", 256, "per-batch trace ring depth (negative disables tracing)")
	flag.StringVar(&o.traceOut, "trace-out", "", "record a span timeline and write Chrome trace-event JSON (Perfetto / chrome://tracing) to this file at exit")
	flag.BoolVar(&o.refresh, "refresh", false, "shorthand for -refresh-mode post")
	flag.StringVar(&o.mode, "refresh-mode", "off", "refresh policy: off, post (one refresh after the client loop), periodic (blind cadence) or drift (re-solve when measured hotness drifts)")
	flag.Float64Var(&o.driftThr, "drift-threshold", 0, "drift score above which a re-solve triggers (0 = detector default 0.3)")
	flag.IntVar(&o.checkEvery, "drift-check-every", 0, "batches between drift checks (0 = controller default 32)")
	flag.IntVar(&o.period, "refresh-period", 0, "batches between periodic-mode re-solves (0 = controller default 512)")
	flag.IntVar(&o.workers, "solver-workers", 0, "branch-and-bound workers for optioned policies (0/1 sequential, -1 all cores)")
	flag.Float64Var(&o.relgap, "relgap", 0, "relative optimality gap for optioned policies (0 proves optimality)")
	flag.IntVar(&o.lookahead, "lookahead", 0, "lookahead prefetch depth L: clients announce request i+L before issuing request i (0 disables the prefetch pipeline)")
	flag.IntVar(&o.staleThr, "stale-threshold", 0, "bounded-staleness window S in batches: staged rows from an outgoing placement snapshot stay servable up to S batches past their commit (0 = staged rows die with their snapshot)")
	flag.BoolVar(&o.openLoop, "open-loop", false, "replace the closed-loop clients with open-loop dispatchers that offer load at -qps regardless of completions")
	flag.Float64Var(&o.qps, "qps", 50_000, "open-loop offered request rate across all GPUs")
	flag.StringVar(&o.arrivals, "arrivals", "poisson", "open-loop arrival process: poisson or mmpp (bursty)")
	flag.Int64Var(&o.users, "users", 1_000_000, "open-loop simulated user population (per-user key affinity is hash-derived, so millions cost nothing)")
	flag.DurationVar(&o.duration, "duration", 2*time.Second, "open-loop run length")
	flag.StringVar(&o.admission, "admission", "fastfail", "admission policy when the per-GPU queue is full: fastfail (shed immediately with ErrOverload) or a wait bound like 500us (shed only after waiting that long for space)")
	flag.IntVar(&o.queueDepth, "queue-depth", 0, "per-GPU admission queue depth (0 = engine default 256)")
	flag.BoolVar(&o.flight, "flight", true, "record flight-recorder events (always-on per-worker rings; zero hot-path allocations)")
	flag.IntVar(&o.flightDepth, "flight-depth", 4096, "per-worker flight ring depth in events")
	flag.Float64Var(&o.sloP99Ms, "slo-p99-ms", 0, "admitted-request p99 SLO in milliseconds; > 0 arms the watchdog (p99, shed ratio, queue saturation, solve wall, prefetch drops) to write a diagnostic bundle on violation")
	flag.StringVar(&o.bundleDir, "bundle-dir", "ugache-bundles", "directory diagnostic bundles are written under (watchdog trips, SIGQUIT, POST /debug/flight/bundle)")
	flag.StringVar(&o.metricsOut, "metrics-out", "", "write the final telemetry snapshot as JSON to this file at exit")
	flag.BoolVar(&o.pprofOn, "pprof", false, "expose net/http/pprof under /debug/pprof/ on the -listen address")
	flag.IntVar(&o.nodes, "nodes", 1, "cluster mode: run N in-process nodes behind the consistent-hash router (closed-loop only)")
	flag.Float64Var(&o.netBW, "net-bw", 25e9, "cluster inter-machine link bandwidth in bytes/s")
	flag.DurationVar(&o.netLatency, "net-latency", 10*time.Microsecond, "cluster inter-machine one-way latency")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file at exit")
	blockprofile := flag.String("blockprofile", "", "write a goroutine blocking profile to this file at exit")
	mutexprofile := flag.String("mutexprofile", "", "write a mutex contention profile to this file at exit")
	blockRate := flag.Int("block-profile-rate", 0, "runtime block profile rate in ns per sampled event (0 off; 1 samples every block)")
	mutexFrac := flag.Int("mutex-profile-fraction", 0, "runtime mutex profile fraction (sample 1/n contended events; 0 off)")
	flag.Parse()
	stopProf, err := prof.StartWith(prof.Config{
		CPUProfile:           *cpuprofile,
		MemProfile:           *memprofile,
		BlockProfile:         *blockprofile,
		MutexProfile:         *mutexprofile,
		BlockProfileRate:     *blockRate,
		MutexProfileFraction: *mutexFrac,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "ugache-serve: %v\n", err)
		os.Exit(1)
	}
	runErr := run(o)
	if err := stopProf(); err != nil && runErr == nil {
		runErr = err
	}
	if runErr != nil {
		fmt.Fprintf(os.Stderr, "ugache-serve: %v\n", runErr)
		os.Exit(1)
	}
}

func specByName(name string) (workload.DLRSpec, error) {
	for _, s := range workload.DLRDatasets {
		if s.Name == name {
			return s, nil
		}
	}
	return workload.DLRSpec{}, fmt.Errorf("unknown dataset %q (have CR, SYN-A, SYN-B)", name)
}

func platformByName(name string) (*platform.Platform, error) {
	switch name {
	case "A", "a":
		return platform.ServerA(), nil
	case "B", "b":
		return platform.ServerB(), nil
	case "C", "c":
		return platform.ServerC(), nil
	}
	return nil, fmt.Errorf("unknown server %q (have A, B, C)", name)
}

func run(o options) error {
	if o.nodes < 1 {
		return fmt.Errorf("-nodes must be >= 1, got %d", o.nodes)
	}
	if o.nodes > 1 {
		return runCluster(o)
	}
	// -refresh-mode post (and its -refresh shorthand) is a command-level
	// policy: one refresh after the client loop. The in-loop policies
	// (periodic, drift) are the controller's.
	admitWait := time.Duration(0)
	if !strings.EqualFold(o.admission, "fastfail") {
		var err error
		if admitWait, err = time.ParseDuration(o.admission); err != nil || admitWait <= 0 {
			return fmt.Errorf("-admission: want fastfail or a positive wait bound like 500us, got %q", o.admission)
		}
	}
	post := o.refresh || strings.EqualFold(o.mode, "post")
	mode := core.RefreshOff
	if !strings.EqualFold(o.mode, "post") {
		var err error
		if mode, err = core.ParseRefreshMode(o.mode); err != nil {
			return err
		}
	}
	spec, err := specByName(o.dataset)
	if err != nil {
		return err
	}
	p, err := platformByName(o.server)
	if err != nil {
		return err
	}
	ds, err := spec.Build(o.scale, o.seed)
	if err != nil {
		return err
	}
	n := ds.NumEntries()
	fmt.Printf("dataset %s at scale %g: %d tables, %d entries, %d B rows\n",
		spec.Name, o.scale, ds.KeysPerSample(), n, ds.MT.MaxEntryBytes())

	// Warm hotness from the dataset's own stream, then build the system in
	// functional mode so lookups return (and verify against) real bytes.
	var rec [][]int64
	for i := 0; i < 64; i++ {
		rec = append(rec, ds.GenBatch(o.batch*o.clients))
	}
	hot, err := workload.ProfileBatches(n, rec)
	if err != nil {
		return err
	}
	// One registry shared across the core (extraction tiers, refresh) and
	// the serving engine (latency, coalescing); the HTTP handler reads it.
	// The span recorder, when -trace-out asks for one, is shared the same
	// way so serve, sim, refresh and solver spans land in one trace.
	reg := telemetry.NewRegistry(p.N)
	var tl *timeline.Recorder
	if o.traceOut != "" || o.flight {
		// Flight keeps the span recorder on even without -trace-out: the
		// watchdog's bundles dump the current timeline window, and exemplar
		// batch seqs resolve into its span trees.
		tl = timeline.NewRecorder(p.N, 0)
	}
	var fl *flight.Recorder
	if o.flight {
		fl = flight.NewRecorder(p.N, o.flightDepth)
	}
	health := telemetry.NewHealth()
	t0 := time.Now()
	sys, err := core.Build(core.Config{
		Platform:   p,
		Hotness:    hot,
		EntryBytes: ds.MT.MaxEntryBytes(),
		CacheRatio: o.ratio,
		Source:     ds.MT,
		Solver:     solver.Options{Workers: o.workers, RelGap: o.relgap},
		Telemetry:  reg,
		Timeline:   tl,
		Flight:     fl,
	})
	if err != nil {
		return err
	}
	fmt.Printf("built %s: cache ratio %g solved and filled in %.2fs\n",
		p.Name, o.ratio, time.Since(t0).Seconds())

	var sampler *cache.HotnessSampler
	if post || mode != core.RefreshOff {
		sampler = cache.NewHotnessSampler(n, 1)
	}
	var ctrl *core.Controller
	if mode != core.RefreshOff {
		ctrl, err = core.NewController(sys, core.ControllerConfig{
			Mode:          mode,
			Sampler:       sampler,
			CheckEvery:    o.checkEvery,
			PeriodBatches: o.period,
			Drift:         cache.DriftConfig{Threshold: o.driftThr},
			Telemetry:     reg,
			Async:         true,
		})
		if err != nil {
			return err
		}
		switch mode {
		case core.RefreshDrift:
			dc := ctrl.Detector().Config()
			fmt.Printf("refresh mode drift: top-%d overlap + rank distance, threshold %.2f\n", dc.TopK, dc.Threshold)
		case core.RefreshPeriodic:
			period := o.period
			if period <= 0 {
				period = 512
			}
			fmt.Printf("refresh mode periodic: re-solve every %d batches\n", period)
		}
	}
	srv, err := serve.New(sys, serve.Config{
		MaxBatchKeys: o.maxBatch,
		MaxWait:      o.maxWait,
		Telemetry:    reg,
		TraceDepth:   o.traceDepth,
		Sampler:      sampler,
		Controller:   ctrl,
		Timeline:     tl,
		Flight:       fl,
		Lookahead:    o.lookahead,
		StaleBatches: o.staleThr,
		QueueDepth:   o.queueDepth,
		AdmitWait:    admitWait,
	})
	if err != nil {
		return err
	}
	if o.lookahead > 0 {
		fmt.Printf("prefetch:          lookahead %d, staleness window %d batches, %d staged rows/GPU\n",
			o.lookahead, o.staleThr, srv.StagingArena(0).Capacity())
	}

	// The watchdog rides the flight recorder: -slo-p99-ms > 0 arms the full
	// SLO signal set (bundles on sustained violation); otherwise the recorder
	// still runs and manual triggers (SIGQUIT, the /debug endpoint) work.
	var wd *flight.Watchdog
	if fl != nil {
		slo := flight.SLO{}
		if o.sloP99Ms > 0 {
			slo = flight.SLO{
				P99:                  time.Duration(o.sloP99Ms * float64(time.Millisecond)),
				MaxShedRatio:         0.05,
				MaxQueueFrac:         0.9,
				MaxSolveWall:         2 * time.Second,
				MaxPrefetchDropRatio: 0.5,
			}
		}
		infCap, _ := srv.QueueCapacity()
		wd, err = flight.NewWatchdog(flight.WatchdogConfig{
			SLO:           slo,
			Registry:      reg,
			Recorder:      fl,
			QueueCapacity: infCap,
			Bundle: flight.BundleConfig{
				Dir:      o.bundleDir,
				Recorder: fl,
				Registry: reg,
				Timeline: tl,
			},
			OnBundle: func(path string, err error) {
				if err != nil {
					fmt.Fprintf(os.Stderr, "ugache-serve: flight bundle: %v\n", err)
					return
				}
				fmt.Printf("flight:            wrote diagnostic bundle %s\n", path)
			},
		})
		if err != nil {
			return err
		}
		wd.Start()
		if o.sloP99Ms > 0 {
			fmt.Printf("flight:            %d rings x %d events; watchdog armed (p99 %gms, bundles -> %s)\n",
				fl.Workers(), o.flightDepth, o.sloP99Ms, o.bundleDir)
		} else {
			fmt.Printf("flight:            %d rings x %d events; watchdog disarmed (SIGQUIT or POST /debug/flight/bundle for a manual bundle)\n",
				fl.Workers(), o.flightDepth)
		}
	}
	health.SetReady(true)

	// finalize is the single shutdown path, shared by normal completion and
	// SIGINT/SIGTERM: stop advertising readiness, drain the workers, write
	// the span timeline, and report the final telemetry snapshot.
	var finalizeOnce sync.Once
	finalize := func() {
		finalizeOnce.Do(func() {
			health.SetReady(false)
			srv.Close()
			if wd != nil {
				wd.Close()
			}
			if ctrl != nil {
				ctrl.Wait()
				cst := ctrl.Stats()
				fmt.Printf("controller:        %d batches, %d checks, %d refreshes, %d errors\n",
					cst.Batches, cst.Checks, cst.Refreshes, cst.Errors)
				if mode == core.RefreshDrift {
					fmt.Printf("drift:             last score %.3f (overlap %.3f, rank distance %.3f)\n",
						cst.LastScore, cst.LastOverlap, cst.LastRankDistance)
				}
				if cst.Refreshes > 0 {
					fmt.Printf("incremental delta: last refresh moved %d entries (full rebuild: %d)\n",
						cst.LastMoved, cst.LastRebuild)
				}
			}
			if o.traceOut != "" {
				if err := writeTrace(tl, o.traceOut); err != nil {
					fmt.Fprintf(os.Stderr, "ugache-serve: %v\n", err)
				} else {
					fmt.Printf("timeline:          %d spans -> %s (open in https://ui.perfetto.dev)\n",
						len(tl.Events()), o.traceOut)
				}
			}
			if wd != nil {
				st := wd.State()
				fmt.Printf("flight:            %d events recorded, %d watchdog trips\n",
					fl.Recorded(), st.Trips)
				if st.LastBundlePath != "" {
					fmt.Printf("flight bundle:     %s\n", st.LastBundlePath)
				}
			}
			if o.metricsOut != "" {
				if err := writeMetricsJSON(reg, o.metricsOut); err != nil {
					fmt.Fprintf(os.Stderr, "ugache-serve: %v\n", err)
				} else {
					fmt.Printf("metrics:           final snapshot -> %s\n", o.metricsOut)
				}
			}
			printFinalSnapshot(reg)
		})
	}
	defer finalize()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sig)
	go func() {
		s, ok := <-sig
		if !ok {
			return
		}
		fmt.Printf("\nreceived %v; flushing\n", s)
		finalize()
		os.Exit(0)
	}()

	// SIGQUIT freezes the evidence without killing the run: drain the flight
	// rings and profiles into a bundle and keep serving (the default Go
	// SIGQUIT behaviour — stack dump and exit — is preempted by the Notify).
	if wd != nil {
		sigq := make(chan os.Signal, 1)
		signal.Notify(sigq, syscall.SIGQUIT)
		defer signal.Stop(sigq)
		go func() {
			for range sigq {
				if _, err := wd.TriggerBundle("sigquit"); err != nil {
					fmt.Fprintf(os.Stderr, "ugache-serve: flight bundle: %v\n", err)
				}
			}
		}()
	}

	if o.listen != "" {
		ln, err := net.Listen("tcp", o.listen)
		if err != nil {
			return fmt.Errorf("telemetry listener: %w", err)
		}
		defer ln.Close()
		hcfg := telemetry.HandlerConfig{
			Registry:    reg,
			Trace:       srv.Trace(),
			Timeline:    tl,
			Health:      health,
			EnablePprof: o.pprofOn,
		}
		if wd != nil {
			// Assigned only when non-nil: a typed-nil *Watchdog in the
			// interface field would pass the handler's nil check and panic.
			hcfg.Flight = wd
		}
		handler := telemetry.NewHandler(hcfg)
		go func() {
			if err := http.Serve(ln, handler); err != nil {
				// The listener closes on exit; anything else is worth a note.
				fmt.Fprintf(os.Stderr, "ugache-serve: telemetry server: %v\n", err)
			}
		}()
		fmt.Printf("telemetry:         http://%s/metrics (also /debug/trace, /debug/timeline, /debug/flight, /healthz, /readyz)\n", ln.Addr())
	}

	if o.openLoop {
		if err := runOpenLoop(o, srv, p, int64(n), reg, admitWait); err != nil {
			return err
		}
		if post {
			fmt.Println("note: -refresh post is a closed-loop report; skipped in open-loop mode")
		}
		if o.listen != "" {
			fmt.Printf("\nrun complete; telemetry still live on %s — Ctrl-C to exit\n", o.listen)
			select {} // the signal goroutine finalizes and exits the process
		}
		return nil
	}

	// Closed loop: each client issues its next request as soon as the
	// previous one completes, round-robining destination GPUs.
	latencies := make([][]time.Duration, o.clients)
	var simSum float64
	var simMu sync.Mutex
	var wg sync.WaitGroup
	start := time.Now()
	errCh := make(chan error, o.clients)
	for c := 0; c < o.clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			r := rng.New(o.seed).Split(fmt.Sprintf("client%d", c))
			// The peek stream is a same-seeded replica of r running L requests
			// ahead: announcing request i+L's exact keys before issuing request
			// i is the lookahead oracle the prefetch pipeline stages against.
			peekR := rng.New(o.seed).Split(fmt.Sprintf("client%d", c))
			announce := func(i int) {
				if o.lookahead == 0 || i >= o.requests {
					return
				}
				srv.Prefetch((c+i)%p.N, ds.GenBatchWith(peekR, o.batch))
			}
			for i := 0; i < o.lookahead; i++ {
				announce(i)
			}
			lats := make([]time.Duration, 0, o.requests)
			var localSim float64
			for i := 0; i < o.requests; i++ {
				announce(i + o.lookahead)
				keys := ds.GenBatchWith(r, o.batch)
				reqStart := time.Now()
				res, err := srv.Lookup((c+i)%p.N, keys)
				if err != nil {
					errCh <- fmt.Errorf("client %d: %w", c, err)
					return
				}
				lats = append(lats, time.Since(reqStart))
				localSim += res.SimSeconds
			}
			latencies[c] = lats
			simMu.Lock()
			simSum += localSim
			simMu.Unlock()
		}(c)
	}
	wg.Wait()
	wall := time.Since(start)
	close(errCh)
	for err := range errCh {
		return err
	}

	var all []time.Duration
	for _, l := range latencies {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	pct := func(q float64) time.Duration {
		if len(all) == 0 {
			return 0
		}
		i := int(q * float64(len(all)-1))
		return all[i]
	}
	st := srv.Stats()
	total := len(all)
	fmt.Printf("\n%d clients x %d requests (%d samples each) in %.2fs\n",
		o.clients, o.requests, o.batch, wall.Seconds())
	fmt.Printf("throughput:        %.0f req/s, %.0f keys/s\n",
		float64(total)/wall.Seconds(), float64(st.RequestedKeys)/wall.Seconds())
	fmt.Printf("latency:           p50 %v  p99 %v  max %v\n", pct(0.50), pct(0.99), pct(1.0))
	fmt.Printf("coalescing:        %d batches, %.1f unique keys/batch (%.1f requested)\n",
		st.Batches, st.MeanBatchKeys(), float64(st.RequestedKeys)/float64(maxI64(st.Batches, 1)))
	fmt.Printf("simulated extract: %.3f ms/batch mean, %.1f ms total per request stream\n",
		st.SimSeconds/float64(maxI64(st.Batches, 1))*1e3, simSum/float64(maxI64(int64(o.clients), 1))*1e3)

	// Per-tier hit split from the shared registry (local / peer / host).
	tier := func(name string) float64 {
		for _, s := range reg.Samples() {
			if s.Name == name {
				return s.Value
			}
		}
		return 0
	}
	local, remote, host, network := tier("core_hit_local_keys_total"),
		tier("core_hit_remote_keys_total"), tier("core_hit_host_keys_total"),
		tier("core_hit_network_keys_total")
	if sum := local + remote + host + network; sum > 0 {
		fmt.Printf("hit tiers:         %.1f%% local, %.1f%% remote, %.1f%% host, %.1f%% network (of %d unique keys)\n",
			100*local/sum, 100*remote/sum, 100*host/sum, 100*network/sum, st.UniqueKeys)
	}
	if o.lookahead > 0 {
		hits := tier("serve_fill_prefetch_hit")
		fmt.Printf("prefetch:          %.0f windows staged %.0f keys; %.0f staged hits (%.1f%% of unique), %.0f dropped windows\n",
			tier("serve_prefetch_windows_total"), tier("serve_prefetch_staged_keys_total"),
			hits, 100*hits/float64(maxI64(st.UniqueKeys, 1)), tier("serve_prefetch_dropped_windows_total"))
		if stale := tier("serve_stale_served_keys_total"); stale > 0 {
			fmt.Printf("stale serving:     %.0f keys served from outgoing snapshots within S=%d\n", stale, o.staleThr)
		}
	}

	// One §7.2 refresh against the hotness measured during the run, so the
	// control tracks (solver + refresh steps) appear in the timeline.
	if post {
		measured, err := sampler.Hotness()
		if err != nil {
			return fmt.Errorf("refresh: %w", err)
		}
		baseIter := st.SimSeconds / float64(maxI64(st.Batches, 1))
		if baseIter <= 0 {
			baseIter = 1e-3
		}
		rep, err := sys.Refresh(measured, baseIter, cache.DefaultRefreshConfig())
		if err != nil {
			return fmt.Errorf("refresh: %w", err)
		}
		fmt.Printf("refresh:           %d evicted, %d inserted in %.1fs simulated (%.1f%% mean impact)\n",
			rep.EvictedEntries, rep.InsertedEntries, rep.Duration, 100*rep.MeanImpact)
		if st := rep.Solve; st != nil {
			nodes := ""
			if st.Nodes > 0 {
				nodes = fmt.Sprintf(", %d B&B nodes", st.Nodes)
			}
			fmt.Printf("refresh solve:     %.3fs wall (workers %d, warm start%s)\n",
				st.WallSeconds, st.Workers, nodes)
		}
	}

	if o.listen != "" {
		fmt.Printf("\nrun complete; telemetry still live on %s — Ctrl-C to exit\n", o.listen)
		select {} // the signal goroutine finalizes and exits the process
	}
	return nil
}

// runOpenLoop drives the engine with rate-scheduled arrivals: one
// dispatcher per GPU offers its share of -qps whether or not the server
// keeps up, which is what exposes the admission knee — a closed loop slows
// its own offer the moment the server saturates. Sheds (ErrOverload) are an
// expected outcome and are reported, not treated as failures; latency of
// admitted requests is measured from each request's intended arrival time,
// so dispatcher lag cannot hide queueing delay (coordinated omission).
func runOpenLoop(o options, srv *serve.Server, p *platform.Platform, numKeys int64, reg *telemetry.Registry, admitWait time.Duration) error {
	arr, err := workload.ParseArrival(o.arrivals)
	if err != nil {
		return err
	}
	if o.qps <= 0 {
		return fmt.Errorf("-open-loop needs -qps > 0, got %g", o.qps)
	}

	// One pending-queue entry per in-flight request. Each GPU has one
	// dispatcher and its driver completes requests FIFO, so polling the head
	// of the queue collects results without a goroutine per request.
	type pending struct {
		ch       <-chan serve.Result
		intended time.Time
	}
	var (
		mu         sync.Mutex
		lats       []time.Duration
		dispatched int64
		served     int64
		shed       int64
		firstErr   error
	)
	fmt.Printf("\nopen loop:         %s arrivals at %.0f qps offered for %v (%d users, %d keys/request, admission %s)\n",
		arr, o.qps, o.duration, o.users, o.batch, o.admission)
	var wg sync.WaitGroup
	start := time.Now()
	for d := 0; d < p.N; d++ {
		wg.Add(1)
		go func(d int) {
			defer wg.Done()
			gen, err := workload.NewOpenLoop(workload.OpenLoopConfig{
				QPS:            o.qps / float64(p.N),
				Arrivals:       arr,
				Users:          o.users,
				NumKeys:        numKeys,
				KeysPerRequest: o.batch,
			}, o.seed+uint64(d)*7919)
			if err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
				return
			}
			epoch := time.Now()
			var q []pending
			var nDisp, nServed, nShed int64
			var myLats []time.Duration
			collect := func(block bool) {
				for len(q) > 0 {
					if !block {
						select {
						case res := <-q[0].ch:
							if res.Err == nil {
								nServed++
								myLats = append(myLats, time.Since(q[0].intended))
							} else if errors.Is(res.Err, serve.ErrOverload) {
								nShed++
							} else {
								mu.Lock()
								if firstErr == nil {
									firstErr = res.Err
								}
								mu.Unlock()
							}
							q = q[1:]
							continue
						default:
						}
						return
					}
					res := <-q[0].ch
					if res.Err == nil {
						nServed++
						myLats = append(myLats, time.Since(q[0].intended))
					} else if errors.Is(res.Err, serve.ErrOverload) {
						nShed++
					} else {
						mu.Lock()
						if firstErr == nil {
							firstErr = res.Err
						}
						mu.Unlock()
					}
					q = q[1:]
				}
			}
			var req workload.OpenLoopRequest
			for {
				gen.Next(&req)
				if req.At >= o.duration {
					break
				}
				intended := epoch.Add(req.At)
				if wait := time.Until(intended); wait > 0 {
					time.Sleep(wait)
				}
				keys := append([]int64(nil), req.Keys...)
				q = append(q, pending{ch: srv.Handle(d, keys), intended: intended})
				nDisp++
				collect(false)
			}
			collect(true)
			mu.Lock()
			dispatched += nDisp
			served += nServed
			shed += nShed
			lats = append(lats, myLats...)
			mu.Unlock()
		}(d)
	}
	wg.Wait()
	wall := time.Since(start)
	if firstErr != nil {
		return firstErr
	}

	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	pct := func(q float64) time.Duration {
		if len(lats) == 0 {
			return 0
		}
		return lats[int(q*float64(len(lats)-1))]
	}
	metric := func(name string) float64 { // exact name, or max over per-GPU expansions
		var v float64
		for _, s := range reg.Samples() {
			if strings.HasPrefix(s.Name, name) && s.Value > v {
				v = s.Value
			}
		}
		return v
	}
	offered := float64(dispatched) / o.duration.Seconds()
	shedPct := 0.0
	if dispatched > 0 {
		shedPct = 100 * float64(shed) / float64(dispatched)
	}
	fmt.Printf("offered:           %d requests, %.0f qps measured (target %.0f)\n", dispatched, offered, o.qps)
	fmt.Printf("served:            %d requests, %.0f qps; shed %d (%.1f%%) via ErrOverload\n",
		served, float64(served)/wall.Seconds(), shed, shedPct)
	if admitWait > 0 {
		fmt.Printf("admission:         bounded wait %v; %.0f requests admitted after waiting (serve_admit_wait_admitted_total)\n",
			admitWait, metric("serve_admit_wait_admitted_total"))
	} else {
		fmt.Printf("admission:         fast-fail (queue full sheds immediately; serve_rejected_total %.0f)\n",
			metric("serve_rejected_total"))
	}
	infCap, _ := srv.QueueCapacity()
	fmt.Printf("queue:             peak depth %.0f of %d (serve_queue_depth_peak)\n",
		metric("serve_queue_depth_peak"), infCap)
	fmt.Printf("latency (from intended arrival): p50 %v  p99 %v  max %v\n", pct(0.50), pct(0.99), pct(1.0))
	return nil
}

// writeTrace exports the recorder to path.
func writeTrace(tl *timeline.Recorder, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("trace-out: %w", err)
	}
	if err := tl.WriteTrace(f); err != nil {
		f.Close()
		return fmt.Errorf("trace-out: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("trace-out: %w", err)
	}
	return nil
}

// writeMetricsJSON dumps the registry's Samples snapshot as one flat JSON
// object (name -> value) — the machine-readable form of the final telemetry,
// so short runs keep it without scraping the HTTP endpoint.
func writeMetricsJSON(reg *telemetry.Registry, path string) error {
	samples := reg.Samples()
	out := make(map[string]float64, len(samples))
	for _, s := range samples {
		out[s.Name] = s.Value
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("metrics-out: %w", err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		f.Close()
		return fmt.Errorf("metrics-out: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("metrics-out: %w", err)
	}
	return nil
}

// printFinalSnapshot reports the closing telemetry state: the cumulative
// totals plus any per-link peak-utilization gauges the run produced.
func printFinalSnapshot(reg *telemetry.Registry) {
	fmt.Printf("\nfinal telemetry snapshot:\n")
	for _, s := range reg.Samples() {
		switch {
		case s.Name == "serve_requests_total" || s.Name == "serve_batches_total" ||
			s.Name == "serve_unique_keys_total" || s.Name == "cache_refresh_total" ||
			s.Name == "core_extract_total" || s.Name == "serve_rejected_total" ||
			s.Name == "serve_rejected_background_total" ||
			s.Name == "serve_admit_wait_admitted_total":
			fmt.Printf("  %-42s %.0f\n", s.Name, s.Value)
		case strings.HasPrefix(s.Name, "serve_queue_depth_peak") && s.Value > 0:
			fmt.Printf("  %-42s %.0f\n", s.Name, s.Value)
		case strings.HasPrefix(s.Name, "sim_link_peak_util") && s.Value > 0:
			fmt.Printf("  %-42s %.3f\n", s.Name, s.Value)
		}
	}
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
